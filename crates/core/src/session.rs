//! [`VeCycleSession`]: the paper's deployment loop over hosts and
//! checkpoints.
//!
//! §3 describes the operational cycle: *"On an outgoing migration, the
//! source writes a checkpoint of the VM to its local disk. A subsequent
//! incoming migration of the same VM reuses the local checkpoint to
//! bootstrap the VM."* This module owns that cycle so callers only say
//! "move this VM there now".

use std::sync::Arc;

use vecycle_checkpoint::{Checkpoint, ChecksumIndex, PartialCheckpoint};
use vecycle_faults::{FaultCause, FaultKind, FaultPlan, RetryPolicy};
use vecycle_host::{Cluster, Host, MigrationSchedule};
use vecycle_mem::{workload::GuestWorkload, Guest, MutableMemory};
use vecycle_net::TrafficLedger;
use vecycle_obs::{layouts, MetricsRegistry};
use vecycle_types::{Bytes, Error, HostId, PageCount, SimDuration, SimTime, VmId};

use crate::{
    LiveOutcome, MigrationEngine, MigrationOutcome, MigrationReport, SetupReport, Strategy,
};

/// What first-round technique the session applies when a checkpoint is
/// (or is not) available at the destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecyclePolicy {
    /// Always full migrations (the QEMU baseline).
    Baseline,
    /// Sender-side dedup only.
    DedupOnly,
    /// VeCycle: recycle a destination checkpoint when present, falling
    /// back to dedup when none exists (as §4.6 assumes: "VeCycle still
    /// uses deduplication").
    VeCycle,
    /// Adaptive: probe a page sample against the destination checkpoint
    /// and only recycle when the estimated similarity clears
    /// `min_similarity` — busy VMs skip the checksum pass entirely
    /// (§2.3: "an active VM with no idle intervals will only gain a
    /// small benefit from a local checkpoint").
    Adaptive {
        /// Minimum estimated similarity to engage VeCycle.
        min_similarity: f64,
    },
}

/// Aggregate statistics over the reports of a schedule run.
///
/// # Examples
///
/// ```
/// use vecycle_core::session::ScheduleSummary;
///
/// let summary = ScheduleSummary::of(&[]);
/// assert_eq!(summary.migrations, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Number of migrations aggregated.
    pub migrations: usize,
    /// Total source → destination traffic.
    pub total_traffic: vecycle_types::Bytes,
    /// Mean migration time.
    pub mean_time: vecycle_types::SimDuration,
    /// Worst stop-and-copy downtime observed.
    pub max_downtime: vecycle_types::SimDuration,
    /// Migrations that recycled a checkpoint (vecycle strategies).
    pub recycled: usize,
    /// Migrations that only completed after at least one retry.
    pub retried: usize,
    /// Migrations that degraded to a full (dedup-only) transfer because
    /// the checkpoint was unusable.
    pub fell_back: usize,
    /// Migrations that exhausted every attempt; the VM stayed put.
    pub failed: usize,
    /// Traffic spent on failed attempts across all migrations.
    pub wasted_traffic: vecycle_types::Bytes,
}

impl ScheduleSummary {
    /// Aggregates a report list (e.g. from
    /// [`VeCycleSession::run_schedule`]).
    pub fn of(reports: &[crate::MigrationReport]) -> ScheduleSummary {
        use crate::StrategyName;
        let total_traffic = reports.iter().map(|r| r.source_traffic()).sum();
        let total_time: vecycle_types::SimDuration = reports.iter().map(|r| r.total_time()).sum();
        let mean_time = if reports.is_empty() {
            vecycle_types::SimDuration::ZERO
        } else {
            vecycle_types::SimDuration::from_nanos(total_time.as_nanos() / reports.len() as u64)
        };
        let max_downtime = reports
            .iter()
            .map(|r| r.downtime())
            .fold(vecycle_types::SimDuration::ZERO, |a, b| a.max(b));
        let recycled = reports
            .iter()
            .filter(|r| {
                matches!(
                    r.strategy(),
                    StrategyName::VeCycle | StrategyName::VeCycleDedup
                )
            })
            .count();
        let mut retried = 0;
        let mut fell_back = 0;
        let mut failed = 0;
        for r in reports {
            match r.outcome() {
                MigrationOutcome::Completed => {}
                MigrationOutcome::CompletedAfterRetries { .. } => retried += 1,
                MigrationOutcome::FellBackToFull { .. } => fell_back += 1,
                MigrationOutcome::Failed { .. } => failed += 1,
            }
        }
        let wasted_traffic = reports.iter().map(|r| r.wasted_traffic()).sum();
        ScheduleSummary {
            migrations: reports.len(),
            total_traffic,
            mean_time,
            max_downtime,
            recycled,
            retried,
            fell_back,
            failed,
            wasted_traffic,
        }
    }
}

impl std::fmt::Display for ScheduleSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} migrations ({} recycled): {} total, mean time {}, worst downtime {}",
            self.migrations, self.recycled, self.total_traffic, self.mean_time, self.max_downtime,
        )?;
        if self.retried + self.fell_back + self.failed > 0 {
            write!(
                f,
                " [{} retried, {} fell back, {} failed, {} wasted]",
                self.retried, self.fell_back, self.failed, self.wasted_traffic,
            )?;
        }
        Ok(())
    }
}

/// A notable incident during a faulted migration, in occurrence order —
/// the session's transcript of what went wrong and how it recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A migration attempt died mid-transfer.
    AttemptAborted {
        /// The migrating VM.
        vm: VmId,
        /// Which attempt died (1-based).
        attempt: u32,
        /// Why it died.
        cause: FaultCause,
        /// Pages that reached the destination before the cut.
        landed: PageCount,
    },
    /// The session backed off before the next attempt.
    RetryScheduled {
        /// The migrating VM.
        vm: VmId,
        /// The upcoming attempt number.
        attempt: u32,
        /// Simulated wait before it starts.
        backoff: SimDuration,
    },
    /// A retry recycled the aborted attempt's landed pages as a
    /// [`PartialCheckpoint`] — VeCycle's idea applied to its own failure.
    ResumedFromPartial {
        /// The migrating VM.
        vm: VmId,
        /// The attempt doing the resuming.
        attempt: u32,
        /// Landed pages available for recycling.
        landed: PageCount,
    },
    /// A stored checkpoint failed validation and was discarded; the
    /// migration continues without recycling.
    CorruptCheckpointDiscarded {
        /// The VM whose checkpoint was unusable.
        vm: VmId,
        /// The host holding the bad checkpoint.
        host: HostId,
    },
    /// The source host crashed while persisting the post-migration
    /// checkpoint: the fresh capture is lost, the previous on-disk
    /// checkpoint survives (guaranteed by the fsync + rename protocol).
    CheckpointSaveLost {
        /// The VM whose new checkpoint was lost.
        vm: VmId,
        /// The crashing host.
        host: HostId,
    },
    /// Every attempt failed; the VM stays at the source.
    MigrationFailed {
        /// The VM that could not be moved.
        vm: VmId,
        /// The fault that killed the final attempt.
        cause: FaultCause,
    },
}

impl SessionEvent {
    /// Stable snake_case label for metrics (`session_events_total{event=…}`).
    ///
    /// Every event the session pushes also bumps the matching counter
    /// (see `VeCycleSession::record_event`), so transcript prose and the
    /// metrics layer can never disagree about how often something
    /// happened.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionEvent::AttemptAborted { .. } => "attempt_aborted",
            SessionEvent::RetryScheduled { .. } => "retry_scheduled",
            SessionEvent::ResumedFromPartial { .. } => "resumed_from_partial",
            SessionEvent::CorruptCheckpointDiscarded { .. } => "corrupt_checkpoint_discarded",
            SessionEvent::CheckpointSaveLost { .. } => "checkpoint_save_lost",
            SessionEvent::MigrationFailed { .. } => "migration_failed",
        }
    }
}

impl std::fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionEvent::AttemptAborted {
                vm,
                attempt,
                cause,
                landed,
            } => write!(
                f,
                "{vm}: attempt {attempt} aborted ({cause}), {landed} landed"
            ),
            SessionEvent::RetryScheduled {
                vm,
                attempt,
                backoff,
            } => write!(
                f,
                "{vm}: retrying (attempt {attempt}) after {backoff} backoff"
            ),
            SessionEvent::ResumedFromPartial {
                vm,
                attempt,
                landed,
            } => write!(f, "{vm}: attempt {attempt} resumes from {landed} landed"),
            SessionEvent::CorruptCheckpointDiscarded { vm, host } => {
                write!(f, "{vm}: corrupt checkpoint discarded at {host}")
            }
            SessionEvent::CheckpointSaveLost { vm, host } => {
                write!(
                    f,
                    "{vm}: {host} crashed during checkpoint save; old checkpoint survives"
                )
            }
            SessionEvent::MigrationFailed { vm, cause } => {
                write!(f, "{vm}: migration failed ({cause}), VM stays at source")
            }
        }
    }
}

/// The result of a schedule run under fault injection: the per-leg
/// reports (skipped legs produce none) plus the ordered incident log.
#[derive(Debug)]
pub struct FaultedScheduleRun {
    /// One report per executed migration, in schedule order.
    pub reports: Vec<MigrationReport>,
    /// Incidents, in occurrence order.
    pub events: Vec<SessionEvent>,
}

/// A placed VM: guest state plus its current host.
#[derive(Debug)]
pub struct VmInstance<M> {
    id: VmId,
    guest: Guest<M>,
    location: HostId,
}

impl<M: MutableMemory> VmInstance<M> {
    /// Places a guest on `host`.
    pub fn new(id: VmId, guest: Guest<M>, host: HostId) -> Self {
        VmInstance {
            id,
            guest,
            location: host,
        }
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Where the VM currently runs.
    pub fn location(&self) -> HostId {
        self.location
    }

    /// The guest state.
    pub fn guest(&self) -> &Guest<M> {
        &self.guest
    }

    /// Mutable guest state (for driving workloads between migrations).
    pub fn guest_mut(&mut self) -> &mut Guest<M> {
        &mut self.guest
    }
}

/// What the session found when it went looking for a recyclable
/// checkpoint at the destination.
#[derive(Debug, Clone)]
enum CheckpointFetch {
    /// A validated checkpoint, from the warm in-memory store or loaded
    /// off the durable one.
    Usable(Arc<Checkpoint>),
    /// No checkpoint anywhere: first visit (or it was discarded).
    Missing,
    /// A checkpoint existed but failed validation and was discarded.
    Corrupt,
}

/// Drives checkpoint-recycled migrations across a [`Cluster`].
#[derive(Debug)]
pub struct VeCycleSession {
    cluster: Cluster,
    engine: MigrationEngine,
    policy: RecyclePolicy,
    retry: RetryPolicy,
}

impl VeCycleSession {
    /// Creates a session over `cluster` with the VeCycle policy, an
    /// engine configured from the cluster's link, and the default
    /// [`RetryPolicy`].
    pub fn new(cluster: Cluster) -> Self {
        let engine = MigrationEngine::new(cluster.link());
        VeCycleSession {
            cluster,
            engine,
            policy: RecyclePolicy::VeCycle,
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RecyclePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: MigrationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the retry policy for faulted migrations.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Shares a metrics registry with this session (and its engine).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.engine = self.engine.with_metrics(metrics);
        self
    }

    /// The metrics registry (the engine's — session and engine always
    /// share one, so wire counters and session counters land together).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// Appends a transcript event *and* bumps its typed counter in one
    /// step — the only way session code records an incident, so the two
    /// accountings cannot drift.
    fn record_event(&self, events: &mut Vec<SessionEvent>, event: SessionEvent) {
        self.metrics()
            .inc("session_events_total", &[("event", event.kind())], 1);
        events.push(event);
    }

    /// Observes a freshly built recycling index, passing it through.
    fn obs_index(&self, source: &str, index: Arc<ChecksumIndex>) -> Arc<ChecksumIndex> {
        vecycle_checkpoint::observe_index(self.metrics(), source, &index);
        index
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Finds a recyclable checkpoint of `vm` at `dest`, handling the two
    /// failure shapes: an injected validation failure (the fault plan
    /// says the stored bytes are bad) and a genuinely corrupt file in the
    /// durable store. Corrupt checkpoints are discarded — worst case
    /// VeCycle behaves like plain dedup, never worse (§3's invariant that
    /// recycling is an optimisation, not a dependency).
    fn fetch_checkpoint(
        &self,
        vm: VmId,
        dest: &Host,
        inject_corrupt: bool,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<CheckpointFetch> {
        if inject_corrupt {
            let had_mem = dest.store().remove(vm) > 0;
            let mut had_disk = false;
            if let Some(ds) = dest.disk_store() {
                had_disk = matches!(ds.load(vm), Ok(Some(_)) | Err(Error::Corrupt { .. }));
                ds.remove(vm)?;
            }
            if had_mem || had_disk {
                self.record_event(
                    events,
                    SessionEvent::CorruptCheckpointDiscarded {
                        vm,
                        host: dest.id(),
                    },
                );
                return Ok(CheckpointFetch::Corrupt);
            }
            return Ok(CheckpointFetch::Missing);
        }
        if let Some(cp) = dest.store().latest(vm) {
            return Ok(CheckpointFetch::Usable(cp));
        }
        // Cold in-memory store: fall back to the durable one (the
        // host-restart scenario) and warm the memory store on success.
        if let Some(ds) = dest.disk_store() {
            match ds.load(vm) {
                Ok(Some(cp)) => {
                    dest.store().save(cp);
                    if let Some(warm) = dest.store().latest(vm) {
                        return Ok(CheckpointFetch::Usable(warm));
                    }
                }
                Ok(None) => {}
                Err(Error::Corrupt { .. }) => {
                    ds.remove(vm)?;
                    self.record_event(
                        events,
                        SessionEvent::CorruptCheckpointDiscarded {
                            vm,
                            host: dest.id(),
                        },
                    );
                    return Ok(CheckpointFetch::Corrupt);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(CheckpointFetch::Missing)
    }

    /// Picks the first-round strategy from what the destination holds: a
    /// full checkpoint, a [`PartialCheckpoint`] from an aborted attempt,
    /// both (their digests union into one index), or neither. Also
    /// reports why recycling was skipped, if it was skipped for a
    /// fault-shaped reason.
    fn strategy_for<M: MutableMemory>(
        &self,
        vm: &VmInstance<M>,
        fetch: &CheckpointFetch,
        partial: Option<&PartialCheckpoint>,
    ) -> (Strategy, Option<FaultCause>) {
        let partial = partial
            .filter(|p| p.page_count() == vm.guest.page_count() && p.landed_pages().as_u64() > 0);
        let corrupt = matches!(fetch, CheckpointFetch::Corrupt);
        let cause = corrupt.then_some(FaultCause::CorruptCheckpoint);
        let cp = match fetch {
            CheckpointFetch::Usable(cp) if cp.page_count() == vm.guest.page_count() => {
                Some(Arc::clone(cp))
            }
            _ => None,
        };
        match self.policy {
            RecyclePolicy::Baseline => (Strategy::full(), None),
            RecyclePolicy::DedupOnly => match partial {
                Some(p) => (
                    Strategy::vecycle_with_index(
                        self.obs_index("partial", Arc::new(p.build_index())),
                    )
                    .with_dedup(),
                    None,
                ),
                None => (Strategy::dedup(), None),
            },
            RecyclePolicy::VeCycle => {
                let strategy = match (&cp, partial) {
                    (Some(cp), Some(p)) => Strategy::vecycle_with_index(
                        self.obs_index("merged", Arc::new(p.build_index_with(&cp.digests()))),
                    )
                    .with_dedup(),
                    (Some(cp), None) => Strategy::vecycle_with_index(
                        self.obs_index("checkpoint", Arc::new(cp.build_index())),
                    )
                    .with_dedup(),
                    (None, Some(p)) => Strategy::vecycle_with_index(
                        self.obs_index("partial", Arc::new(p.build_index())),
                    )
                    .with_dedup(),
                    (None, None) => Strategy::dedup(),
                };
                (strategy, cause)
            }
            RecyclePolicy::Adaptive { min_similarity } => match cp {
                Some(cp) => {
                    let index = self.obs_index("checkpoint", Arc::new(cp.build_index()));
                    let estimate =
                        MigrationEngine::estimate_similarity(vm.guest.memory(), &index, 256);
                    let recycle = estimate.as_f64() >= min_similarity;
                    self.metrics()
                        .set_gauge("session_similarity_estimate", &[], estimate.as_f64());
                    self.metrics().inc(
                        "session_similarity_probe_total",
                        &[("verdict", if recycle { "recycle" } else { "fallback" })],
                        1,
                    );
                    if recycle {
                        let strategy =
                            match partial {
                                Some(p) => Strategy::vecycle_with_index(self.obs_index(
                                    "merged",
                                    Arc::new(p.build_index_with(&cp.digests())),
                                ))
                                .with_dedup(),
                                None => Strategy::vecycle_with_index(index).with_dedup(),
                            };
                        (strategy, None)
                    } else {
                        let strategy = match partial {
                            Some(p) => Strategy::vecycle_with_index(
                                self.obs_index("partial", Arc::new(p.build_index())),
                            )
                            .with_dedup(),
                            None => Strategy::dedup(),
                        };
                        (strategy, Some(FaultCause::LowSimilarity))
                    }
                }
                None => match partial {
                    Some(p) => (
                        Strategy::vecycle_with_index(
                            self.obs_index("partial", Arc::new(p.build_index())),
                        )
                        .with_dedup(),
                        cause,
                    ),
                    None => (Strategy::dedup(), cause),
                },
            },
        }
    }

    /// Migrates `vm` to `to` at simulated instant `now`, running
    /// `workload` inside the guest during the copy rounds.
    ///
    /// Implements the full cycle: pick a strategy from the destination's
    /// checkpoint store, run the pre-copy engine, store a fresh
    /// checkpoint of the *post-migration* state at the source (the host
    /// being vacated), and update the VM's location.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `to` is not in the cluster or the
    /// VM's current host is unknown, and propagates engine errors.
    pub fn migrate<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        to: HostId,
        now: SimTime,
        workload: &mut W,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        self.migrate_with_faults(
            vm,
            to,
            now,
            workload,
            &FaultPlan::none(),
            0,
            &mut Vec::new(),
        )
    }

    /// Migrates `vm` to `to` under the faults `plan` assigns to leg
    /// `leg`, retrying per the session's [`RetryPolicy`]. Incidents are
    /// appended to `events` in occurrence order.
    ///
    /// Fault-induced failures are *data*, not errors: an attempt killed
    /// by an injected link drop is retried (recycling the aborted
    /// attempt's landed pages as a [`PartialCheckpoint`] when the policy
    /// allows), and a migration that exhausts every attempt returns a
    /// report with [`MigrationOutcome::Failed`] and the VM still at the
    /// source. `Err` is reserved for real problems: unknown hosts,
    /// filesystem failures, engine invariant violations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `to` is not in the cluster or the
    /// VM's current host is unknown, and propagates engine and
    /// durable-store errors.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_with_faults<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        to: HostId,
        now: SimTime,
        workload: &mut W,
        plan: &FaultPlan,
        leg: usize,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let source = self
            .cluster
            .host(vm.location)
            .ok_or_else(|| Error::NotFound {
                what: format!("source host {}", vm.location),
            })?
            .clone();
        let dest = self
            .cluster
            .host(to)
            .ok_or_else(|| Error::NotFound {
                what: format!("destination host {to}"),
            })?
            .clone();

        let inject_corrupt = plan.has(leg, |f| matches!(f, FaultKind::CheckpointCorrupt));
        let crash_on_save = plan.has(leg, |f| matches!(f, FaultKind::CrashDuringSave));
        let fetch = self.fetch_checkpoint(vm.id, &dest, inject_corrupt, events)?;
        let fetch_result = match &fetch {
            CheckpointFetch::Usable(_) => "hit",
            CheckpointFetch::Missing => "miss",
            CheckpointFetch::Corrupt => "corrupt",
        };
        self.metrics().inc(
            "session_checkpoint_fetch_total",
            &[("result", fetch_result)],
            1,
        );
        // The attempts this migration makes are *derived from the metrics
        // layer*: the counter delta across the retry loop is the one
        // source of truth the outcome reports (the transcript's
        // `AttemptAborted`/`RetryScheduled` counts must reconcile with it
        // — tested in `tests/metrics_golden.rs`).
        let attempts_before = self.metrics().counter("session_attempts_total", &[]);

        let mut partial: Option<PartialCheckpoint> = None;
        let mut wasted_traffic = Bytes::ZERO;
        let mut wasted_time = SimDuration::ZERO;
        let mut attempt = 1u32;
        loop {
            self.metrics().inc("session_attempts_total", &[], 1);
            let attempt_faults = plan.for_attempt(leg, attempt);
            let (strategy, cause) = self.strategy_for(vm, &fetch, partial.as_ref());
            let strategy_name = strategy.name();
            match self.engine.migrate_live_faulted(
                &mut vm.guest,
                workload,
                strategy,
                &attempt_faults,
            )? {
                LiveOutcome::Completed(mut report) => {
                    let attempts = (self.metrics().counter("session_attempts_total", &[])
                        - attempts_before) as u32;
                    let outcome = if attempts > 1 {
                        MigrationOutcome::CompletedAfterRetries { attempts }
                    } else if let Some(cause) = cause {
                        MigrationOutcome::FellBackToFull { cause }
                    } else {
                        MigrationOutcome::Completed
                    };
                    self.metrics().inc(
                        "session_outcomes_total",
                        &[("outcome", outcome.label())],
                        1,
                    );
                    report.set_outcome(outcome);
                    report.add_waste(wasted_traffic, wasted_time);

                    // "After the migration, the source writes a checkpoint
                    // of the VM to its local disk" — the state that just
                    // left. The write is off the critical path but its
                    // cost is accounted in the setup report.
                    if crash_on_save {
                        // The host dies mid-write: the fsync + rename
                        // protocol guarantees the *previous* checkpoint
                        // survives intact, so only the fresh capture is
                        // lost.
                        self.metrics().inc(
                            "session_checkpoint_saves_total",
                            &[("result", "lost")],
                            1,
                        );
                        self.record_event(
                            events,
                            SessionEvent::CheckpointSaveLost {
                                vm: vm.id,
                                host: source.id(),
                            },
                        );
                    } else {
                        let checkpoint = Checkpoint::capture(vm.id, now, vm.guest.memory());
                        if let Some(ds) = source.disk_store() {
                            ds.save(&checkpoint)?;
                        }
                        source.store().save(checkpoint);
                        self.metrics().inc(
                            "session_checkpoint_saves_total",
                            &[("result", "saved")],
                            1,
                        );
                        report.setup_mut().checkpoint_write =
                            source.disk().sequential_time(vm.guest.ram_size());
                    }
                    vm.location = to;
                    return Ok(report);
                }
                LiveOutcome::Aborted(aborted) => {
                    wasted_traffic += aborted.traffic;
                    wasted_time = wasted_time.saturating_add(aborted.elapsed);
                    self.metrics().inc(
                        "faults_observed_total",
                        &[("cause", aborted.cause.label())],
                        1,
                    );
                    self.record_event(
                        events,
                        SessionEvent::AttemptAborted {
                            vm: vm.id,
                            attempt,
                            cause: aborted.cause,
                            landed: aborted.landed_pages(),
                        },
                    );
                    if attempt >= self.retry.max_attempts {
                        self.metrics()
                            .inc("session_outcomes_total", &[("outcome", "failed")], 1);
                        self.record_event(
                            events,
                            SessionEvent::MigrationFailed {
                                vm: vm.id,
                                cause: aborted.cause,
                            },
                        );
                        let mut report = MigrationReport::new(
                            strategy_name,
                            vm.guest.ram_size(),
                            Vec::new(),
                            SimDuration::ZERO,
                            SetupReport::default(),
                            TrafficLedger::new(),
                            TrafficLedger::new(),
                        );
                        report.set_outcome(MigrationOutcome::Failed {
                            cause: aborted.cause,
                        });
                        report.set_converged(false);
                        report.add_waste(wasted_traffic, wasted_time);
                        // The VM never left; no checkpoint is written and
                        // its location does not change.
                        return Ok(report);
                    }
                    let next = attempt + 1;
                    let backoff = self.retry.backoff_before(next);
                    self.metrics().inc("session_retries_total", &[], 1);
                    self.metrics().observe(
                        "session_backoff_sim_millis",
                        &[],
                        layouts::SIM_MILLIS,
                        backoff.as_nanos() / 1_000_000,
                    );
                    self.record_event(
                        events,
                        SessionEvent::RetryScheduled {
                            vm: vm.id,
                            attempt: next,
                            backoff,
                        },
                    );
                    // The guest keeps running (and dirtying pages) at the
                    // source while the session waits out the backoff.
                    workload.advance(&mut vm.guest, backoff);
                    wasted_time = wasted_time.saturating_add(backoff);
                    if self.retry.resume_from_partial
                        && !matches!(self.policy, RecyclePolicy::Baseline)
                        && aborted.landed_pages().as_u64() > 0
                    {
                        self.record_event(
                            events,
                            SessionEvent::ResumedFromPartial {
                                vm: vm.id,
                                attempt: next,
                                landed: aborted.landed_pages(),
                            },
                        );
                        let resumed = PartialCheckpoint::new(vm.id, aborted.landed);
                        vecycle_checkpoint::observe_partial(self.metrics(), &resumed);
                        partial = Some(resumed);
                    }
                    attempt = next;
                }
            }
        }
    }

    /// Runs a [`MigrationSchedule`], advancing `workload` through the
    /// gaps between migrations so the guest keeps aging between moves.
    ///
    /// Returns one report per leg, in schedule order.
    ///
    /// # Errors
    ///
    /// Fails on the first leg whose source host does not match the VM's
    /// current location (an inconsistent schedule) or whose migration
    /// fails.
    pub fn run_schedule<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        schedule: &MigrationSchedule,
        workload: &mut W,
    ) -> vecycle_types::Result<Vec<MigrationReport>>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let mut reports = Vec::with_capacity(schedule.len());
        let mut clock = SimTime::EPOCH;
        for leg in schedule {
            if leg.from != vm.location {
                return Err(Error::InvalidConfig {
                    reason: format!(
                        "schedule expects {} at {} but it is at {}",
                        vm.id, leg.from, vm.location
                    ),
                });
            }
            let gap = leg.at.duration_since(clock);
            workload.advance(&mut vm.guest, gap);
            clock = leg.at;
            reports.push(self.migrate(vm, leg.to, clock, workload)?);
        }
        Ok(reports)
    }

    /// Runs a [`MigrationSchedule`] under fault injection.
    ///
    /// Unlike [`VeCycleSession::run_schedule`], a failed migration does
    /// not poison the run: the VM simply stays where it is, and later
    /// legs adapt — a leg whose destination is the VM's current host is
    /// skipped (the failure already "achieved" it), any other leg
    /// migrates from the VM's *actual* location rather than the
    /// scheduled one.
    ///
    /// # Errors
    ///
    /// Propagates only non-fault errors (unknown hosts, filesystem
    /// failures); injected faults never produce an `Err`.
    pub fn run_schedule_with_faults<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        schedule: &MigrationSchedule,
        workload: &mut W,
        plan: &FaultPlan,
    ) -> vecycle_types::Result<FaultedScheduleRun>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        vecycle_faults::observe_plan(self.metrics(), plan);
        let mut reports = Vec::with_capacity(schedule.len());
        let mut events = Vec::new();
        let mut clock = SimTime::EPOCH;
        for (leg_idx, leg) in schedule.legs().iter().enumerate() {
            let gap = leg.at.duration_since(clock);
            workload.advance(&mut vm.guest, gap);
            clock = leg.at;
            if leg.to == vm.location {
                continue;
            }
            reports.push(self.migrate_with_faults(
                vm,
                leg.to,
                clock,
                workload,
                plan,
                leg_idx,
                &mut events,
            )?);
        }
        Ok(FaultedScheduleRun { reports, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::{workload::SilentWorkload, DigestMemory};
    use vecycle_net::LinkSpec;
    use vecycle_types::{Bytes, PageCount, SimDuration};

    fn session() -> VeCycleSession {
        VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
    }

    fn instance() -> VmInstance<DigestMemory> {
        let mem = DigestMemory::with_uniform_content(Bytes::from_mib(4), 1).unwrap();
        VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
    }

    #[test]
    fn first_migration_is_dedup_second_recycles() {
        let s = session();
        let mut vm = instance();
        let r1 = s
            .migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        assert_eq!(r1.strategy().to_string(), "dedup");
        assert_eq!(vm.location(), HostId::new(1));
        // Host 0 now holds a checkpoint; migrating back recycles it.
        let r2 = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(1),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r2.strategy().to_string(), "vecycle+dedup");
        assert!(r2.source_traffic().as_f64() < r1.source_traffic().as_f64() / 10.0);
    }

    #[test]
    fn baseline_policy_never_recycles() {
        let s = session().with_policy(RecyclePolicy::Baseline);
        let mut vm = instance();
        for hop in [1u32, 0, 1] {
            let r = s
                .migrate(
                    &mut vm,
                    HostId::new(hop),
                    SimTime::EPOCH,
                    &mut SilentWorkload,
                )
                .unwrap();
            assert_eq!(r.strategy().to_string(), "full");
        }
    }

    #[test]
    fn checkpoints_accumulate_at_vacated_hosts() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        assert_eq!(s.cluster().hosts()[0].store().vm_count(), 1);
        assert_eq!(s.cluster().hosts()[1].store().vm_count(), 0);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let s = session();
        let mut vm = instance();
        let err = s
            .migrate(&mut vm, HostId::new(9), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap_err();
        assert!(matches!(err, Error::NotFound { .. }));
        assert_eq!(vm.location(), HostId::new(0));
    }

    #[test]
    fn ping_pong_schedule_runs_end_to_end() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(2),
            4,
        );
        let reports = s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .unwrap();
        assert_eq!(reports.len(), 4);
        // Leg 1 finds no checkpoint; every later leg returns to a host
        // that stored one when the VM left it.
        assert_eq!(reports[0].strategy().to_string(), "dedup");
        assert_eq!(reports[1].strategy().to_string(), "vecycle+dedup");
        assert_eq!(reports[2].strategy().to_string(), "vecycle+dedup");
        assert_eq!(reports[3].strategy().to_string(), "vecycle+dedup");
        assert_eq!(vm.location(), HostId::new(0));
    }

    #[test]
    fn inconsistent_schedule_is_rejected() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(1), // VM is actually at host 0
            HostId::new(0),
            SimTime::EPOCH,
            SimDuration::from_hours(1),
            1,
        );
        assert!(s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .is_err());
    }

    #[test]
    fn resized_vm_does_not_recycle_stale_checkpoint() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        // Replace with a larger VM under the same ID.
        let bigger = DigestMemory::with_uniform_content(Bytes::from_mib(8), 2).unwrap();
        let mut vm2 = VmInstance::new(VmId::new(0), Guest::new(bigger), HostId::new(1));
        let r = s
            .migrate(
                &mut vm2,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "dedup");
    }

    #[test]
    fn schedule_summary_aggregates() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            5,
        );
        let reports = s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .unwrap();
        let summary = ScheduleSummary::of(&reports);
        assert_eq!(summary.migrations, 5);
        assert_eq!(summary.recycled, 4); // first leg has no checkpoint
        let by_hand: vecycle_types::Bytes = reports.iter().map(|r| r.source_traffic()).sum();
        assert_eq!(summary.total_traffic, by_hand);
        assert!(summary.mean_time > SimDuration::ZERO);
        assert!(summary.to_string().contains("5 migrations (4 recycled)"));
    }

    #[test]
    fn adaptive_policy_recycles_only_similar_guests() {
        use vecycle_mem::PageContent;
        use vecycle_types::PageIndex;

        let s = session().with_policy(RecyclePolicy::Adaptive {
            min_similarity: 0.5,
        });
        // Warm up: leave a checkpoint at host 0.
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();

        // Barely diverged guest: estimate high, recycles.
        let r = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(1),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "vecycle+dedup");

        // Rewrite nearly everything: estimate collapses, falls back.
        s.migrate(
            &mut vm,
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(2),
            &mut SilentWorkload,
        )
        .unwrap();
        let n = vm.guest().page_count().as_u64();
        for i in 0..n {
            vm.guest_mut()
                .write_page(PageIndex::new(i), PageContent::ContentId((1 << 58) | i));
        }
        let r = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(3),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "dedup");
    }

    #[test]
    fn sizes_match_checkpoint_pages() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        let cp = s.cluster().hosts()[0].store().latest(VmId::new(0)).unwrap();
        assert_eq!(cp.page_count(), PageCount::new(1024));
    }

    // --- fault-injection and recovery ---

    use vecycle_faults::{DropPoint, FaultKind, FaultPlan, FaultRates, RetryPolicy};

    /// Warms host 0 with a checkpoint by hopping the VM 0 → 1.
    fn warmed() -> (VeCycleSession, VmInstance<DigestMemory>) {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        (s, vm)
    }

    #[test]
    fn clean_faulted_migrate_matches_migrate() {
        let (s, mut vm_a) = warmed();
        let (s2, mut vm_b) = warmed();
        let clean = s
            .migrate(
                &mut vm_a,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
            )
            .unwrap();
        let mut events = Vec::new();
        let faulted = s2
            .migrate_with_faults(
                &mut vm_b,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &FaultPlan::none(),
                0,
                &mut events,
            )
            .unwrap();
        assert_eq!(clean, faulted);
        assert!(events.is_empty());
        assert_eq!(clean.outcome(), MigrationOutcome::Completed);
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_dedup() {
        let (s, mut vm) = warmed();
        let plan = FaultPlan::none().inject(0, FaultKind::CheckpointCorrupt);
        let mut events = Vec::new();
        let r = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "dedup");
        assert_eq!(
            r.outcome(),
            MigrationOutcome::FellBackToFull {
                cause: vecycle_faults::FaultCause::CorruptCheckpoint
            }
        );
        assert!(matches!(
            events[0],
            SessionEvent::CorruptCheckpointDiscarded { .. }
        ));
        // The bad checkpoint is gone; the VM still arrived.
        assert_eq!(s.cluster().hosts()[0].store().vm_count(), 0);
        assert_eq!(vm.location(), HostId::new(0));
    }

    #[test]
    fn corrupt_fault_without_checkpoint_is_a_plain_first_visit() {
        let s = session();
        let mut vm = instance();
        let plan = FaultPlan::none().inject(0, FaultKind::CheckpointCorrupt);
        let mut events = Vec::new();
        let r = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(1),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        // Nothing existed to corrupt: no fallback, no event.
        assert_eq!(r.outcome(), MigrationOutcome::Completed);
        assert!(events.is_empty());
    }

    #[test]
    fn link_drop_retries_and_resumes_from_landed_pages() {
        let (s, mut vm) = warmed();
        // The return leg recycles a checkpoint, so its forward traffic is
        // mostly 28-byte checksums — the cut must be far below RAM size
        // to strike mid-transfer.
        let plan = FaultPlan::none().inject(
            0,
            FaultKind::LinkDrop {
                after: DropPoint::Bytes(Bytes::from_kib(8)),
                attempts: 1,
            },
        );
        let mut events = Vec::new();
        let r = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        assert_eq!(
            r.outcome(),
            MigrationOutcome::CompletedAfterRetries { attempts: 2 }
        );
        assert_eq!(vm.location(), HostId::new(0));
        assert!(r.wasted_traffic() > Bytes::ZERO);
        assert!(r.wasted_time() > SimDuration::ZERO);
        assert!(r.total_traffic_with_retries() > r.source_traffic());
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(matches!(events[0], SessionEvent::AttemptAborted { .. }));
        assert!(matches!(events[1], SessionEvent::RetryScheduled { .. }));
        assert!(matches!(events[2], SessionEvent::ResumedFromPartial { .. }));
    }

    #[test]
    fn resumed_retry_resends_less_than_from_scratch() {
        // Two identical worlds, differing only in whether the retry
        // recycles the aborted attempt's landed pages.
        let drop_fault = FaultKind::LinkDrop {
            after: DropPoint::RamFraction(0.5),
            attempts: 1,
        };
        let run = |retry: RetryPolicy| {
            let s = session().with_retry_policy(retry);
            let mut vm = instance();
            let plan = FaultPlan::none().inject(0, drop_fault);
            let mut events = Vec::new();
            s.migrate_with_faults(
                &mut vm,
                HostId::new(1),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap()
        };
        let resumed = run(RetryPolicy::default());
        let scratch = run(RetryPolicy::from_scratch());
        assert_eq!(
            resumed.outcome(),
            MigrationOutcome::CompletedAfterRetries { attempts: 2 }
        );
        // The cut lands ~half the pages; the resumed attempt replaces
        // those with checksum messages, so it re-sends well under what a
        // from-scratch retry sends.
        assert!(
            resumed.source_traffic().as_f64() < scratch.source_traffic().as_f64() * 0.75,
            "resumed {} vs scratch {}",
            resumed.source_traffic(),
            scratch.source_traffic()
        );
    }

    #[test]
    fn exhausted_retries_leave_the_vm_at_the_source() {
        let s = session().with_retry_policy(RetryPolicy::default().with_max_attempts(2));
        let mut vm = instance();
        let plan = FaultPlan::none().inject(
            0,
            FaultKind::LinkDrop {
                after: DropPoint::RamFraction(0.25),
                attempts: u32::MAX,
            },
        );
        let mut events = Vec::new();
        let r = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(1),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        assert!(matches!(r.outcome(), MigrationOutcome::Failed { .. }));
        assert!(!r.outcome().is_success());
        assert_eq!(vm.location(), HostId::new(0), "VM must stay at the source");
        assert_eq!(r.source_traffic(), Bytes::ZERO);
        assert!(r.wasted_traffic() > Bytes::ZERO);
        // No checkpoint is written for a migration that never happened.
        assert_eq!(s.cluster().hosts()[0].store().vm_count(), 0);
        assert!(matches!(
            events.last().unwrap(),
            SessionEvent::MigrationFailed { .. }
        ));
    }

    #[test]
    fn crash_during_save_loses_only_the_new_checkpoint() {
        let (s, mut vm) = warmed();
        // Host 0 holds the checkpoint from the warm-up hop. Migrating
        // back with a crash-on-save fault means host 1 (the vacated
        // source) never stores the new one.
        let plan = FaultPlan::none().inject(0, FaultKind::CrashDuringSave);
        let mut events = Vec::new();
        let r = s
            .migrate_with_faults(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
                &plan,
                0,
                &mut events,
            )
            .unwrap();
        assert_eq!(r.outcome(), MigrationOutcome::Completed);
        assert_eq!(vm.location(), HostId::new(0));
        assert_eq!(s.cluster().hosts()[1].store().vm_count(), 0);
        // The old checkpoint at host 0 was consumed-but-kept: still there.
        assert_eq!(s.cluster().hosts()[0].store().vm_count(), 1);
        assert!(matches!(events[0], SessionEvent::CheckpointSaveLost { .. }));
    }

    #[test]
    fn disk_store_write_through_survives_memory_store_loss() {
        let dir = std::env::temp_dir().join("vecycle-session-diskstore-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
            .attach_disk_stores(&dir)
            .unwrap();
        let s = VeCycleSession::new(cluster);
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        // Simulate a host restart: the in-memory store evaporates, the
        // durable one does not.
        assert_eq!(s.cluster().hosts()[0].store().remove(vm.id()), 1);
        let r = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(1),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(
            r.strategy().to_string(),
            "vecycle+dedup",
            "checkpoint must be recovered from the durable store"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulted_schedule_survives_a_permanent_failure() {
        let s = session().with_retry_policy(RetryPolicy::default().with_max_attempts(2));
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            2,
        );
        // Leg 0 fails on every attempt; leg 1 (1 → 0) then finds the VM
        // already at host 0 and is skipped.
        let plan = FaultPlan::none().inject(
            0,
            FaultKind::LinkDrop {
                after: DropPoint::RamFraction(0.1),
                attempts: u32::MAX,
            },
        );
        let run = s
            .run_schedule_with_faults(&mut vm, &schedule, &mut SilentWorkload, &plan)
            .unwrap();
        assert_eq!(run.reports.len(), 1, "the return leg is skipped");
        assert!(matches!(
            run.reports[0].outcome(),
            MigrationOutcome::Failed { .. }
        ));
        assert_eq!(vm.location(), HostId::new(0));
        let summary = ScheduleSummary::of(&run.reports);
        assert_eq!(summary.failed, 1);
        assert!(summary.to_string().contains("1 failed"));
    }

    #[test]
    fn seeded_fault_schedule_completes_without_errors() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            8,
        );
        let plan = FaultPlan::seeded(7, &FaultRates::uniform(0.5), schedule.len());
        assert!(!plan.is_empty(), "seed 7 at 50% must fault something");
        let run = s
            .run_schedule_with_faults(&mut vm, &schedule, &mut SilentWorkload, &plan)
            .unwrap();
        assert!(!run.reports.is_empty());
        // Every report carries a definite outcome and no panic occurred.
        for r in &run.reports {
            let _ = r.outcome().to_string();
        }
        for e in &run.events {
            let _ = e.to_string();
        }
    }

    #[test]
    fn clean_faulted_schedule_matches_plain_schedule() {
        let make_schedule = |vm: VmId| {
            MigrationSchedule::ping_pong(
                vm,
                HostId::new(0),
                HostId::new(1),
                SimTime::EPOCH + SimDuration::from_hours(1),
                SimDuration::from_hours(1),
                4,
            )
        };
        let s1 = session();
        let mut vm1 = instance();
        let schedule1 = make_schedule(vm1.id());
        let plain = s1
            .run_schedule(&mut vm1, &schedule1, &mut SilentWorkload)
            .unwrap();
        let s2 = session();
        let mut vm2 = instance();
        let schedule2 = make_schedule(vm2.id());
        let faulted = s2
            .run_schedule_with_faults(
                &mut vm2,
                &schedule2,
                &mut SilentWorkload,
                &FaultPlan::none(),
            )
            .unwrap();
        assert_eq!(plain, faulted.reports);
        assert!(faulted.events.is_empty());
    }

    #[test]
    fn session_events_display_as_prose() {
        let e = SessionEvent::AttemptAborted {
            vm: VmId::new(3),
            attempt: 1,
            cause: vecycle_faults::FaultCause::LinkFailure,
            landed: PageCount::new(100),
        };
        let text = e.to_string();
        assert!(text.contains("attempt 1"), "{text}");
        assert!(text.contains("link failure"), "{text}");
    }
}
