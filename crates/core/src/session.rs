//! [`VeCycleSession`]: the paper's deployment loop over hosts and
//! checkpoints.
//!
//! §3 describes the operational cycle: *"On an outgoing migration, the
//! source writes a checkpoint of the VM to its local disk. A subsequent
//! incoming migration of the same VM reuses the local checkpoint to
//! bootstrap the VM."* This module owns that cycle so callers only say
//! "move this VM there now".

use vecycle_checkpoint::Checkpoint;
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::GuestWorkload, Guest, MutableMemory};
use vecycle_types::{Error, HostId, SimTime, VmId};

use crate::{MigrationEngine, MigrationReport, Strategy};

/// What first-round technique the session applies when a checkpoint is
/// (or is not) available at the destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecyclePolicy {
    /// Always full migrations (the QEMU baseline).
    Baseline,
    /// Sender-side dedup only.
    DedupOnly,
    /// VeCycle: recycle a destination checkpoint when present, falling
    /// back to dedup when none exists (as §4.6 assumes: "VeCycle still
    /// uses deduplication").
    VeCycle,
    /// Adaptive: probe a page sample against the destination checkpoint
    /// and only recycle when the estimated similarity clears
    /// `min_similarity` — busy VMs skip the checksum pass entirely
    /// (§2.3: "an active VM with no idle intervals will only gain a
    /// small benefit from a local checkpoint").
    Adaptive {
        /// Minimum estimated similarity to engage VeCycle.
        min_similarity: f64,
    },
}

/// Aggregate statistics over the reports of a schedule run.
///
/// # Examples
///
/// ```
/// use vecycle_core::session::ScheduleSummary;
///
/// let summary = ScheduleSummary::of(&[]);
/// assert_eq!(summary.migrations, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Number of migrations aggregated.
    pub migrations: usize,
    /// Total source → destination traffic.
    pub total_traffic: vecycle_types::Bytes,
    /// Mean migration time.
    pub mean_time: vecycle_types::SimDuration,
    /// Worst stop-and-copy downtime observed.
    pub max_downtime: vecycle_types::SimDuration,
    /// Migrations that recycled a checkpoint (vecycle strategies).
    pub recycled: usize,
}

impl ScheduleSummary {
    /// Aggregates a report list (e.g. from
    /// [`VeCycleSession::run_schedule`]).
    pub fn of(reports: &[crate::MigrationReport]) -> ScheduleSummary {
        use crate::StrategyName;
        let total_traffic = reports.iter().map(|r| r.source_traffic()).sum();
        let total_time: vecycle_types::SimDuration = reports.iter().map(|r| r.total_time()).sum();
        let mean_time = if reports.is_empty() {
            vecycle_types::SimDuration::ZERO
        } else {
            vecycle_types::SimDuration::from_nanos(total_time.as_nanos() / reports.len() as u64)
        };
        let max_downtime = reports
            .iter()
            .map(|r| r.downtime())
            .fold(vecycle_types::SimDuration::ZERO, |a, b| a.max(b));
        let recycled = reports
            .iter()
            .filter(|r| {
                matches!(
                    r.strategy(),
                    StrategyName::VeCycle | StrategyName::VeCycleDedup
                )
            })
            .count();
        ScheduleSummary {
            migrations: reports.len(),
            total_traffic,
            mean_time,
            max_downtime,
            recycled,
        }
    }
}

impl std::fmt::Display for ScheduleSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} migrations ({} recycled): {} total, mean time {}, worst downtime {}",
            self.migrations, self.recycled, self.total_traffic, self.mean_time, self.max_downtime,
        )
    }
}

/// A placed VM: guest state plus its current host.
#[derive(Debug)]
pub struct VmInstance<M> {
    id: VmId,
    guest: Guest<M>,
    location: HostId,
}

impl<M: MutableMemory> VmInstance<M> {
    /// Places a guest on `host`.
    pub fn new(id: VmId, guest: Guest<M>, host: HostId) -> Self {
        VmInstance {
            id,
            guest,
            location: host,
        }
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Where the VM currently runs.
    pub fn location(&self) -> HostId {
        self.location
    }

    /// The guest state.
    pub fn guest(&self) -> &Guest<M> {
        &self.guest
    }

    /// Mutable guest state (for driving workloads between migrations).
    pub fn guest_mut(&mut self) -> &mut Guest<M> {
        &mut self.guest
    }
}

/// Drives checkpoint-recycled migrations across a [`Cluster`].
#[derive(Debug)]
pub struct VeCycleSession {
    cluster: Cluster,
    engine: MigrationEngine,
    policy: RecyclePolicy,
}

impl VeCycleSession {
    /// Creates a session over `cluster` with the VeCycle policy and an
    /// engine configured from the cluster's link.
    pub fn new(cluster: Cluster) -> Self {
        let engine = MigrationEngine::new(cluster.link());
        VeCycleSession {
            cluster,
            engine,
            policy: RecyclePolicy::VeCycle,
        }
    }

    /// Overrides the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RecyclePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: MigrationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Migrates `vm` to `to` at simulated instant `now`, running
    /// `workload` inside the guest during the copy rounds.
    ///
    /// Implements the full cycle: pick a strategy from the destination's
    /// checkpoint store, run the pre-copy engine, store a fresh
    /// checkpoint of the *post-migration* state at the source (the host
    /// being vacated), and update the VM's location.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `to` is not in the cluster or the
    /// VM's current host is unknown, and propagates engine errors.
    pub fn migrate<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        to: HostId,
        now: SimTime,
        workload: &mut W,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let source = self
            .cluster
            .host(vm.location)
            .ok_or_else(|| Error::NotFound {
                what: format!("source host {}", vm.location),
            })?
            .clone();
        let dest = self
            .cluster
            .host(to)
            .ok_or_else(|| Error::NotFound {
                what: format!("destination host {to}"),
            })?
            .clone();

        let strategy = match self.policy {
            RecyclePolicy::Baseline => Strategy::full(),
            RecyclePolicy::DedupOnly => Strategy::dedup(),
            RecyclePolicy::VeCycle => match dest.store().latest(vm.id) {
                Some(cp) if cp.page_count() == vm.guest.page_count() => {
                    Strategy::vecycle_from_checkpoint(&cp).with_dedup()
                }
                // First visit (or resized VM): no checkpoint to recycle.
                _ => Strategy::dedup(),
            },
            RecyclePolicy::Adaptive { min_similarity } => match dest.store().latest(vm.id) {
                Some(cp) if cp.page_count() == vm.guest.page_count() => {
                    let index = std::sync::Arc::new(cp.build_index());
                    let estimate =
                        MigrationEngine::estimate_similarity(vm.guest.memory(), &index, 256);
                    if estimate.as_f64() >= min_similarity {
                        Strategy::vecycle_with_index(index).with_dedup()
                    } else {
                        Strategy::dedup()
                    }
                }
                _ => Strategy::dedup(),
            },
        };

        let mut report = self
            .engine
            .migrate_live(&mut vm.guest, workload, strategy)?;

        // "After the migration, the source writes a checkpoint of the VM
        // to its local disk" — the state that just left. The write is
        // off the critical path but its cost is accounted in the setup
        // report.
        source
            .store()
            .save(Checkpoint::capture(vm.id, now, vm.guest.memory()));
        report.setup_mut().checkpoint_write = source.disk().sequential_time(vm.guest.ram_size());
        vm.location = to;
        Ok(report)
    }

    /// Runs a [`MigrationSchedule`], advancing `workload` through the
    /// gaps between migrations so the guest keeps aging between moves.
    ///
    /// Returns one report per leg, in schedule order.
    ///
    /// # Errors
    ///
    /// Fails on the first leg whose source host does not match the VM's
    /// current location (an inconsistent schedule) or whose migration
    /// fails.
    pub fn run_schedule<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        schedule: &MigrationSchedule,
        workload: &mut W,
    ) -> vecycle_types::Result<Vec<MigrationReport>>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let mut reports = Vec::with_capacity(schedule.len());
        let mut clock = SimTime::EPOCH;
        for leg in schedule {
            if leg.from != vm.location {
                return Err(Error::InvalidConfig {
                    reason: format!(
                        "schedule expects {} at {} but it is at {}",
                        vm.id, leg.from, vm.location
                    ),
                });
            }
            let gap = leg.at.duration_since(clock);
            workload.advance(&mut vm.guest, gap);
            clock = leg.at;
            reports.push(self.migrate(vm, leg.to, clock, workload)?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_mem::{workload::SilentWorkload, DigestMemory};
    use vecycle_net::LinkSpec;
    use vecycle_types::{Bytes, PageCount, SimDuration};

    fn session() -> VeCycleSession {
        VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
    }

    fn instance() -> VmInstance<DigestMemory> {
        let mem = DigestMemory::with_uniform_content(Bytes::from_mib(4), 1).unwrap();
        VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
    }

    #[test]
    fn first_migration_is_dedup_second_recycles() {
        let s = session();
        let mut vm = instance();
        let r1 = s
            .migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        assert_eq!(r1.strategy().to_string(), "dedup");
        assert_eq!(vm.location(), HostId::new(1));
        // Host 0 now holds a checkpoint; migrating back recycles it.
        let r2 = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(1),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r2.strategy().to_string(), "vecycle+dedup");
        assert!(r2.source_traffic().as_f64() < r1.source_traffic().as_f64() / 10.0);
    }

    #[test]
    fn baseline_policy_never_recycles() {
        let s = session().with_policy(RecyclePolicy::Baseline);
        let mut vm = instance();
        for hop in [1u32, 0, 1] {
            let r = s
                .migrate(
                    &mut vm,
                    HostId::new(hop),
                    SimTime::EPOCH,
                    &mut SilentWorkload,
                )
                .unwrap();
            assert_eq!(r.strategy().to_string(), "full");
        }
    }

    #[test]
    fn checkpoints_accumulate_at_vacated_hosts() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        assert_eq!(s.cluster().hosts()[0].store().vm_count(), 1);
        assert_eq!(s.cluster().hosts()[1].store().vm_count(), 0);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let s = session();
        let mut vm = instance();
        let err = s
            .migrate(&mut vm, HostId::new(9), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap_err();
        assert!(matches!(err, Error::NotFound { .. }));
        assert_eq!(vm.location(), HostId::new(0));
    }

    #[test]
    fn ping_pong_schedule_runs_end_to_end() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(2),
            4,
        );
        let reports = s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .unwrap();
        assert_eq!(reports.len(), 4);
        // Leg 1 finds no checkpoint; every later leg returns to a host
        // that stored one when the VM left it.
        assert_eq!(reports[0].strategy().to_string(), "dedup");
        assert_eq!(reports[1].strategy().to_string(), "vecycle+dedup");
        assert_eq!(reports[2].strategy().to_string(), "vecycle+dedup");
        assert_eq!(reports[3].strategy().to_string(), "vecycle+dedup");
        assert_eq!(vm.location(), HostId::new(0));
    }

    #[test]
    fn inconsistent_schedule_is_rejected() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(1), // VM is actually at host 0
            HostId::new(0),
            SimTime::EPOCH,
            SimDuration::from_hours(1),
            1,
        );
        assert!(s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .is_err());
    }

    #[test]
    fn resized_vm_does_not_recycle_stale_checkpoint() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        // Replace with a larger VM under the same ID.
        let bigger = DigestMemory::with_uniform_content(Bytes::from_mib(8), 2).unwrap();
        let mut vm2 = VmInstance::new(VmId::new(0), Guest::new(bigger), HostId::new(1));
        let r = s
            .migrate(
                &mut vm2,
                HostId::new(0),
                SimTime::EPOCH,
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "dedup");
    }

    #[test]
    fn schedule_summary_aggregates() {
        let s = session();
        let mut vm = instance();
        let schedule = MigrationSchedule::ping_pong(
            vm.id(),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            5,
        );
        let reports = s
            .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
            .unwrap();
        let summary = ScheduleSummary::of(&reports);
        assert_eq!(summary.migrations, 5);
        assert_eq!(summary.recycled, 4); // first leg has no checkpoint
        let by_hand: vecycle_types::Bytes = reports.iter().map(|r| r.source_traffic()).sum();
        assert_eq!(summary.total_traffic, by_hand);
        assert!(summary.mean_time > SimDuration::ZERO);
        assert!(summary.to_string().contains("5 migrations (4 recycled)"));
    }

    #[test]
    fn adaptive_policy_recycles_only_similar_guests() {
        use vecycle_mem::PageContent;
        use vecycle_types::PageIndex;

        let s = session().with_policy(RecyclePolicy::Adaptive {
            min_similarity: 0.5,
        });
        // Warm up: leave a checkpoint at host 0.
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();

        // Barely diverged guest: estimate high, recycles.
        let r = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(1),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "vecycle+dedup");

        // Rewrite nearly everything: estimate collapses, falls back.
        s.migrate(
            &mut vm,
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(2),
            &mut SilentWorkload,
        )
        .unwrap();
        let n = vm.guest().page_count().as_u64();
        for i in 0..n {
            vm.guest_mut()
                .write_page(PageIndex::new(i), PageContent::ContentId((1 << 58) | i));
        }
        let r = s
            .migrate(
                &mut vm,
                HostId::new(0),
                SimTime::EPOCH + SimDuration::from_hours(3),
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "dedup");
    }

    #[test]
    fn sizes_match_checkpoint_pages() {
        let s = session();
        let mut vm = instance();
        s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
            .unwrap();
        let cp = s.cluster().hosts()[0].store().latest(VmId::new(0)).unwrap();
        assert_eq!(cp.page_count(), PageCount::new(1024));
    }
}
