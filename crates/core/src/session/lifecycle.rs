//! The session's checkpoint-lifecycle half: finding a recyclable
//! checkpoint at the destination, choosing a strategy from what it
//! found, persisting the post-migration checkpoint through quota
//! admission, and surviving destination-host crashes.
//!
//! Split from `session/mod.rs` so the retry loop reads as one page and
//! the lifecycle rules as another; everything here is `pub(super)`
//! plumbing for [`VeCycleSession`].

use std::sync::Arc;

use vecycle_checkpoint::{
    Checkpoint, ChecksumIndex, EvictionReason, GoneReason, PartialCheckpoint, SaveOutcome,
};
use vecycle_faults::FaultCause;
use vecycle_host::Host;
use vecycle_mem::MutableMemory;
use vecycle_types::{Error, SimTime, VmId};

use crate::{MigrationEngine, MigrationReport, Strategy};

use super::{RecyclePolicy, SessionEvent, VeCycleSession, VmInstance};

/// What the session found when it went looking for a recyclable
/// checkpoint at the destination.
#[derive(Debug, Clone)]
pub(super) enum CheckpointFetch {
    /// A validated checkpoint, from the warm in-memory store or loaded
    /// off the durable one.
    Usable(Arc<Checkpoint>),
    /// No checkpoint anywhere: first visit (or it was discarded).
    Missing,
    /// A checkpoint existed but failed validation and was discarded.
    Corrupt,
    /// The checkpoint this VM left behind was evicted under disk
    /// pressure — the tombstone tells us recycling *would* have applied.
    Evicted,
    /// The checkpoint rotted on disk and a scrub pass quarantined it.
    Quarantined,
}

impl CheckpointFetch {
    /// Stable label for `session_checkpoint_fetch_total{result=…}`.
    pub(super) fn label(&self) -> &'static str {
        match self {
            CheckpointFetch::Usable(_) => "hit",
            CheckpointFetch::Missing => "miss",
            CheckpointFetch::Corrupt => "corrupt",
            CheckpointFetch::Evicted => "evicted",
            CheckpointFetch::Quarantined => "quarantined",
        }
    }

    /// The fault-shaped reason recycling is impossible, if any — what a
    /// completed migration reports as its `FellBackToFull` cause.
    pub(super) fn fallback_cause(&self) -> Option<FaultCause> {
        match self {
            CheckpointFetch::Usable(_) | CheckpointFetch::Missing => None,
            // A quarantined checkpoint *is* a corrupt checkpoint — the
            // scrub just found it before the load did.
            CheckpointFetch::Corrupt | CheckpointFetch::Quarantined => {
                Some(FaultCause::CorruptCheckpoint)
            }
            CheckpointFetch::Evicted => Some(FaultCause::CheckpointEvicted),
        }
    }
}

impl VeCycleSession {
    /// Finds a recyclable checkpoint of `vm` at `dest`, handling the
    /// failure shapes: an injected validation failure (the fault plan
    /// says the stored bytes are bad), a genuinely corrupt file in the
    /// durable store, and a tombstone left by eviction or quarantine.
    /// Corrupt checkpoints are discarded — worst case VeCycle behaves
    /// like plain dedup, never worse (§3's invariant that recycling is
    /// an optimisation, not a dependency).
    pub(super) fn fetch_checkpoint(
        &self,
        vm: VmId,
        dest: &Host,
        inject_corrupt: bool,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<CheckpointFetch> {
        if inject_corrupt {
            let had_mem = dest.store().remove(vm) > 0;
            let mut had_disk = false;
            if let Some(ds) = dest.disk_store() {
                had_disk = matches!(ds.load(vm), Ok(Some(_)) | Err(Error::Corrupt { .. }));
                ds.remove(vm)?;
            }
            if had_mem || had_disk {
                self.record_event(
                    events,
                    SessionEvent::CorruptCheckpointDiscarded {
                        vm,
                        host: dest.id(),
                    },
                );
                return Ok(CheckpointFetch::Corrupt);
            }
            return Ok(CheckpointFetch::Missing);
        }
        if let Some(cp) = dest.store().latest(vm) {
            // Feed the LRU eviction policy: this checkpoint just proved
            // its worth.
            dest.store().mark_recycled(vm);
            return Ok(CheckpointFetch::Usable(cp));
        }
        // A tombstone beats the disk fallback: eviction and quarantine
        // both already deleted the file, and the tombstone remembers
        // *why* there is nothing to recycle.
        match dest.store().gone(vm) {
            Some(GoneReason::Evicted) => return Ok(CheckpointFetch::Evicted),
            Some(GoneReason::Quarantined) => return Ok(CheckpointFetch::Quarantined),
            None => {}
        }
        // Cold in-memory store: fall back to the durable one (the
        // host-restart scenario) and warm the memory store on success.
        if let Some(ds) = dest.disk_store() {
            match ds.load(vm) {
                Ok(Some(cp)) => {
                    // Warming goes through quota admission like any
                    // save; under pressure it can itself evict.
                    let outcome = dest.store().save_with_outcome(cp);
                    self.note_save_outcome(dest, &outcome, events)?;
                    if let Some(warm) = dest.store().latest(vm) {
                        dest.store().mark_recycled(vm);
                        return Ok(CheckpointFetch::Usable(warm));
                    }
                }
                Ok(None) => {}
                Err(Error::Corrupt { .. }) => {
                    ds.remove(vm)?;
                    self.record_event(
                        events,
                        SessionEvent::CorruptCheckpointDiscarded {
                            vm,
                            host: dest.id(),
                        },
                    );
                    return Ok(CheckpointFetch::Corrupt);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(CheckpointFetch::Missing)
    }

    /// Picks the first-round strategy from what the destination holds: a
    /// full checkpoint, a [`PartialCheckpoint`] from an aborted attempt,
    /// both (their digests union into one index), or neither. Also
    /// reports why recycling was skipped, if it was skipped for a
    /// fault-shaped reason.
    pub(super) fn strategy_for<M: MutableMemory>(
        &self,
        vm: &VmInstance<M>,
        fetch: &CheckpointFetch,
        partial: Option<&PartialCheckpoint>,
    ) -> (Strategy, Option<FaultCause>) {
        let partial = partial
            .filter(|p| p.page_count() == vm.guest().page_count() && p.landed_pages().as_u64() > 0);
        let cause = fetch.fallback_cause();
        let cp = match fetch {
            CheckpointFetch::Usable(cp) if cp.page_count() == vm.guest().page_count() => {
                Some(Arc::clone(cp))
            }
            _ => None,
        };
        match self.policy {
            RecyclePolicy::Baseline => (Strategy::full(), None),
            RecyclePolicy::DedupOnly => match partial {
                Some(p) => (
                    Strategy::vecycle_with_index(
                        self.obs_index("partial", Arc::new(p.build_index())),
                    )
                    .with_dedup(),
                    None,
                ),
                None => (Strategy::dedup(), None),
            },
            RecyclePolicy::VeCycle => {
                let strategy = match (&cp, partial) {
                    (Some(cp), Some(p)) => Strategy::vecycle_with_index(
                        self.obs_index("merged", Arc::new(p.build_index_with(&cp.digests()))),
                    )
                    .with_dedup(),
                    (Some(cp), None) => Strategy::vecycle_with_index(
                        self.obs_index("checkpoint", Arc::new(cp.build_index())),
                    )
                    .with_dedup(),
                    (None, Some(p)) => Strategy::vecycle_with_index(
                        self.obs_index("partial", Arc::new(p.build_index())),
                    )
                    .with_dedup(),
                    (None, None) => Strategy::dedup(),
                };
                (strategy, cause)
            }
            RecyclePolicy::Adaptive { min_similarity } => match cp {
                Some(cp) => {
                    let index = self.obs_index("checkpoint", Arc::new(cp.build_index()));
                    let estimate =
                        MigrationEngine::estimate_similarity(vm.guest().memory(), &index, 256);
                    let recycle = estimate.as_f64() >= min_similarity;
                    self.metrics()
                        .set_gauge("session_similarity_estimate", &[], estimate.as_f64());
                    self.metrics().inc(
                        "session_similarity_probe_total",
                        &[("verdict", if recycle { "recycle" } else { "fallback" })],
                        1,
                    );
                    if recycle {
                        let strategy =
                            match partial {
                                Some(p) => Strategy::vecycle_with_index(self.obs_index(
                                    "merged",
                                    Arc::new(p.build_index_with(&cp.digests())),
                                ))
                                .with_dedup(),
                                None => Strategy::vecycle_with_index(index).with_dedup(),
                            };
                        (strategy, None)
                    } else {
                        let strategy = match partial {
                            Some(p) => Strategy::vecycle_with_index(
                                self.obs_index("partial", Arc::new(p.build_index())),
                            )
                            .with_dedup(),
                            None => Strategy::dedup(),
                        };
                        (strategy, Some(FaultCause::LowSimilarity))
                    }
                }
                None => match partial {
                    Some(p) => (
                        Strategy::vecycle_with_index(
                            self.obs_index("partial", Arc::new(p.build_index())),
                        )
                        .with_dedup(),
                        cause,
                    ),
                    None => (Strategy::dedup(), cause),
                },
            },
        }
    }

    /// Records a [`SaveOutcome`]'s metrics and transcript events:
    /// `ckpt_evictions_total` + the `store_bytes` gauge always, plus a
    /// `CheckpointEvicted` event per *quota* eviction (routine version
    /// replacement is not an incident). Removes disk files for VMs the
    /// in-memory store fully evicted, keeping disk ≡ catalog even when
    /// the save bypassed [`Host::save_checkpoint`].
    pub(super) fn note_save_outcome(
        &self,
        host: &Host,
        outcome: &SaveOutcome,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<()> {
        if let Some(ds) = host.disk_store() {
            for vm in outcome.fully_evicted_vms() {
                ds.remove(vm)?;
            }
        }
        vecycle_host::observe_save(self.metrics(), host, outcome);
        let policy = host.store().policy();
        for record in &outcome.evicted {
            if record.reason == EvictionReason::Quota {
                self.record_event(
                    events,
                    SessionEvent::CheckpointEvicted {
                        vm: record.vm,
                        host: host.id(),
                        policy,
                        reason: record.reason,
                    },
                );
            }
        }
        Ok(())
    }

    /// "After the migration, the source writes a checkpoint of the VM to
    /// its local disk" — the state that just left, pushed through quota
    /// admission and mirrored to the durable store. The write is off the
    /// critical path but its cost is accounted in the setup report.
    pub(super) fn persist_checkpoint<M: MutableMemory>(
        &self,
        vm: &VmInstance<M>,
        source: &Host,
        now: SimTime,
        crash_on_save: bool,
        report: &mut MigrationReport,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<()> {
        if crash_on_save {
            // The host dies mid-write: the fsync + rename protocol
            // guarantees the *previous* checkpoint survives intact, so
            // only the fresh capture is lost.
            self.metrics()
                .inc("session_checkpoint_saves_total", &[("result", "lost")], 1);
            self.record_event(
                events,
                SessionEvent::CheckpointSaveLost {
                    vm: vm.id(),
                    host: source.id(),
                },
            );
            return Ok(());
        }
        let checkpoint = Checkpoint::capture(vm.id(), now, vm.guest().memory());
        let outcome = source.save_checkpoint(checkpoint)?;
        if !outcome.stored {
            self.metrics().inc(
                "session_checkpoint_saves_total",
                &[("result", "refused")],
                1,
            );
            self.record_event(
                events,
                SessionEvent::CheckpointSaveRefused {
                    vm: vm.id(),
                    host: source.id(),
                },
            );
            vecycle_host::observe_store(self.metrics(), source);
            return Ok(());
        }
        self.metrics()
            .inc("session_checkpoint_saves_total", &[("result", "saved")], 1);
        self.note_save_outcome(source, &outcome, events)?;
        report.setup_mut().checkpoint_write = source.disk().sequential_time(vm.guest().ram_size());
        Ok(())
    }

    /// Plays out a destination-host crash and restart: the in-memory
    /// catalog dies with the host, the disk store survives, and the
    /// restart scrubs every file — quarantining rot, re-admitting the
    /// clean ones through quota admission.
    pub(super) fn crash_and_restart(
        &self,
        dest: &Host,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<()> {
        dest.crash();
        self.record_event(events, SessionEvent::HostCrashed { host: dest.id() });
        let scrub = dest.restart()?;
        for &vm in &scrub.quarantined {
            self.record_event(
                events,
                SessionEvent::CheckpointQuarantined {
                    vm,
                    host: dest.id(),
                },
            );
        }
        let policy = dest.store().policy();
        for record in &scrub.evicted {
            if record.reason == EvictionReason::Quota {
                self.record_event(
                    events,
                    SessionEvent::CheckpointEvicted {
                        vm: record.vm,
                        host: dest.id(),
                        policy,
                        reason: record.reason,
                    },
                );
            }
        }
        self.record_event(
            events,
            SessionEvent::HostRestarted {
                host: dest.id(),
                verified: scrub.verified,
                quarantined: scrub.quarantined.len() as u64,
            },
        );
        vecycle_host::observe_restart(self.metrics(), dest, &scrub);
        Ok(())
    }

    /// Observes a freshly built recycling index, passing it through.
    pub(super) fn obs_index(&self, source: &str, index: Arc<ChecksumIndex>) -> Arc<ChecksumIndex> {
        vecycle_checkpoint::observe_index(self.metrics(), source, &index);
        index
    }
}
