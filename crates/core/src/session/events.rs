//! The session's reporting surface: incident transcripts and schedule
//! aggregates.
//!
//! Everything here is *derived* data — the session records incidents and
//! outcomes as it runs (each [`SessionEvent`] push also bumps the
//! matching `session_events_total` counter), and these types present
//! them to callers without influencing a single migration decision.

use vecycle_checkpoint::{EvictionPolicy, EvictionReason};
use vecycle_faults::FaultCause;
use vecycle_types::{HostId, PageCount, SimDuration, VmId};

use crate::{MigrationOutcome, MigrationReport};

/// Aggregate statistics over the reports of a schedule run.
///
/// # Examples
///
/// ```
/// use vecycle_core::session::ScheduleSummary;
///
/// let summary = ScheduleSummary::of(&[]);
/// assert_eq!(summary.migrations, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Number of migrations aggregated.
    pub migrations: usize,
    /// Total source → destination traffic.
    pub total_traffic: vecycle_types::Bytes,
    /// Mean migration time.
    pub mean_time: vecycle_types::SimDuration,
    /// Worst stop-and-copy downtime observed.
    pub max_downtime: vecycle_types::SimDuration,
    /// Migrations that recycled a checkpoint (vecycle strategies).
    pub recycled: usize,
    /// Migrations that only completed after at least one retry.
    pub retried: usize,
    /// Migrations that degraded to a full (dedup-only) transfer because
    /// the checkpoint was unusable.
    pub fell_back: usize,
    /// Migrations that exhausted every attempt; the VM stayed put.
    pub failed: usize,
    /// Traffic spent on failed attempts across all migrations.
    pub wasted_traffic: vecycle_types::Bytes,
}

impl ScheduleSummary {
    /// Aggregates a report list (e.g. from
    /// [`VeCycleSession::run_schedule`](super::VeCycleSession::run_schedule)).
    pub fn of(reports: &[crate::MigrationReport]) -> ScheduleSummary {
        use crate::StrategyName;
        let total_traffic = reports.iter().map(|r| r.source_traffic()).sum();
        let total_time: vecycle_types::SimDuration = reports.iter().map(|r| r.total_time()).sum();
        let mean_time = if reports.is_empty() {
            vecycle_types::SimDuration::ZERO
        } else {
            vecycle_types::SimDuration::from_nanos(total_time.as_nanos() / reports.len() as u64)
        };
        let max_downtime = reports
            .iter()
            .map(|r| r.downtime())
            .fold(vecycle_types::SimDuration::ZERO, |a, b| a.max(b));
        let recycled = reports
            .iter()
            .filter(|r| {
                matches!(
                    r.strategy(),
                    StrategyName::VeCycle | StrategyName::VeCycleDedup
                )
            })
            .count();
        let mut retried = 0;
        let mut fell_back = 0;
        let mut failed = 0;
        for r in reports {
            match r.outcome() {
                MigrationOutcome::Completed => {}
                MigrationOutcome::CompletedAfterRetries { .. } => retried += 1,
                MigrationOutcome::FellBackToFull { .. } => fell_back += 1,
                MigrationOutcome::Failed { .. } => failed += 1,
            }
        }
        let wasted_traffic = reports.iter().map(|r| r.wasted_traffic()).sum();
        ScheduleSummary {
            migrations: reports.len(),
            total_traffic,
            mean_time,
            max_downtime,
            recycled,
            retried,
            fell_back,
            failed,
            wasted_traffic,
        }
    }
}

impl std::fmt::Display for ScheduleSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} migrations ({} recycled): {} total, mean time {}, worst downtime {}",
            self.migrations, self.recycled, self.total_traffic, self.mean_time, self.max_downtime,
        )?;
        if self.retried + self.fell_back + self.failed > 0 {
            write!(
                f,
                " [{} retried, {} fell back, {} failed, {} wasted]",
                self.retried, self.fell_back, self.failed, self.wasted_traffic,
            )?;
        }
        Ok(())
    }
}

/// A notable incident during a faulted migration, in occurrence order —
/// the session's transcript of what went wrong and how it recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// A migration attempt died mid-transfer.
    AttemptAborted {
        /// The migrating VM.
        vm: VmId,
        /// Which attempt died (1-based).
        attempt: u32,
        /// Why it died.
        cause: FaultCause,
        /// Pages that reached the destination before the cut.
        landed: PageCount,
    },
    /// The session backed off before the next attempt.
    RetryScheduled {
        /// The migrating VM.
        vm: VmId,
        /// The upcoming attempt number.
        attempt: u32,
        /// Simulated wait before it starts.
        backoff: SimDuration,
    },
    /// A retry recycled the aborted attempt's landed pages as a
    /// [`PartialCheckpoint`](vecycle_checkpoint::PartialCheckpoint) — VeCycle's idea applied to its own failure.
    ResumedFromPartial {
        /// The migrating VM.
        vm: VmId,
        /// The attempt doing the resuming.
        attempt: u32,
        /// Landed pages available for recycling.
        landed: PageCount,
    },
    /// A stored checkpoint failed validation and was discarded; the
    /// migration continues without recycling.
    CorruptCheckpointDiscarded {
        /// The VM whose checkpoint was unusable.
        vm: VmId,
        /// The host holding the bad checkpoint.
        host: HostId,
    },
    /// The source host crashed while persisting the post-migration
    /// checkpoint: the fresh capture is lost, the previous on-disk
    /// checkpoint survives (guaranteed by the fsync + rename protocol).
    CheckpointSaveLost {
        /// The VM whose new checkpoint was lost.
        vm: VmId,
        /// The crashing host.
        host: HostId,
    },
    /// Every attempt failed; the VM stays at the source.
    MigrationFailed {
        /// The VM that could not be moved.
        vm: VmId,
        /// The fault that killed the final attempt.
        cause: FaultCause,
    },
    /// Disk pressure pushed a checkpoint out of a host's store (and its
    /// file off the host's disk).
    CheckpointEvicted {
        /// The VM whose checkpoint was evicted.
        vm: VmId,
        /// The host that evicted it.
        host: HostId,
        /// The policy that picked it.
        policy: EvictionPolicy,
        /// Why it went.
        reason: EvictionReason,
    },
    /// A post-migration checkpoint was refused admission outright — it
    /// alone exceeds the host's byte quota. Nothing was written.
    CheckpointSaveRefused {
        /// The VM whose checkpoint did not fit.
        vm: VmId,
        /// The host that refused it.
        host: HostId,
    },
    /// The destination host died mid-transfer, taking its in-memory
    /// checkpoint catalog with it.
    HostCrashed {
        /// The host that crashed.
        host: HostId,
    },
    /// The crashed host came back: it re-opened its disk store and
    /// scrubbed every checkpoint file against its wire trailer.
    HostRestarted {
        /// The host that restarted.
        host: HostId,
        /// Checkpoints that re-verified clean and were re-admitted.
        verified: u64,
        /// Checkpoint files that failed verification and were
        /// quarantined.
        quarantined: u64,
    },
    /// A scrub pass found a checkpoint file corrupt and quarantined it:
    /// the file is deleted and the VM tombstoned — it will never be
    /// restored from.
    CheckpointQuarantined {
        /// The VM whose checkpoint rotted.
        vm: VmId,
        /// The host that quarantined it.
        host: HostId,
    },
}

impl SessionEvent {
    /// Stable snake_case label for metrics (`session_events_total{event=…}`).
    ///
    /// Every event the session pushes also bumps the matching counter
    /// (see `VeCycleSession::record_event`), so transcript prose and the
    /// metrics layer can never disagree about how often something
    /// happened.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionEvent::AttemptAborted { .. } => "attempt_aborted",
            SessionEvent::RetryScheduled { .. } => "retry_scheduled",
            SessionEvent::ResumedFromPartial { .. } => "resumed_from_partial",
            SessionEvent::CorruptCheckpointDiscarded { .. } => "corrupt_checkpoint_discarded",
            SessionEvent::CheckpointSaveLost { .. } => "checkpoint_save_lost",
            SessionEvent::MigrationFailed { .. } => "migration_failed",
            SessionEvent::CheckpointEvicted { .. } => "checkpoint_evicted",
            SessionEvent::CheckpointSaveRefused { .. } => "checkpoint_save_refused",
            SessionEvent::HostCrashed { .. } => "host_crashed",
            SessionEvent::HostRestarted { .. } => "host_restarted",
            SessionEvent::CheckpointQuarantined { .. } => "checkpoint_quarantined",
        }
    }
}

impl std::fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionEvent::AttemptAborted {
                vm,
                attempt,
                cause,
                landed,
            } => write!(
                f,
                "{vm}: attempt {attempt} aborted ({cause}), {landed} landed"
            ),
            SessionEvent::RetryScheduled {
                vm,
                attempt,
                backoff,
            } => write!(
                f,
                "{vm}: retrying (attempt {attempt}) after {backoff} backoff"
            ),
            SessionEvent::ResumedFromPartial {
                vm,
                attempt,
                landed,
            } => write!(f, "{vm}: attempt {attempt} resumes from {landed} landed"),
            SessionEvent::CorruptCheckpointDiscarded { vm, host } => {
                write!(f, "{vm}: corrupt checkpoint discarded at {host}")
            }
            SessionEvent::CheckpointSaveLost { vm, host } => {
                write!(
                    f,
                    "{vm}: {host} crashed during checkpoint save; old checkpoint survives"
                )
            }
            SessionEvent::MigrationFailed { vm, cause } => {
                write!(f, "{vm}: migration failed ({cause}), VM stays at source")
            }
            SessionEvent::CheckpointEvicted {
                vm,
                host,
                policy,
                reason,
            } => write!(
                f,
                "{vm}: checkpoint evicted at {host} ({policy} policy, {} pressure)",
                reason.label()
            ),
            SessionEvent::CheckpointSaveRefused { vm, host } => {
                write!(f, "{vm}: checkpoint refused at {host}, exceeds quota alone")
            }
            SessionEvent::HostCrashed { host } => {
                write!(f, "{host}: crashed mid-transfer, in-memory catalog lost")
            }
            SessionEvent::HostRestarted {
                host,
                verified,
                quarantined,
            } => write!(
                f,
                "{host}: restarted, scrub verified {verified} checkpoint(s), quarantined {quarantined}"
            ),
            SessionEvent::CheckpointQuarantined { vm, host } => {
                write!(f, "{vm}: checkpoint quarantined at {host} after failed scrub")
            }
        }
    }
}

/// The result of a schedule run under fault injection: the per-leg
/// reports (skipped legs produce none) plus the ordered incident log.
#[derive(Debug)]
pub struct FaultedScheduleRun {
    /// One report per executed migration, in schedule order.
    pub reports: Vec<MigrationReport>,
    /// Incidents, in occurrence order.
    pub events: Vec<SessionEvent>,
}
