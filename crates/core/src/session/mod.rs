//! [`VeCycleSession`]: the paper's deployment loop over hosts and
//! checkpoints.
//!
//! §3 describes the operational cycle: *"On an outgoing migration, the
//! source writes a checkpoint of the VM to its local disk. A subsequent
//! incoming migration of the same VM reuses the local checkpoint to
//! bootstrap the VM."* This module owns that cycle so callers only say
//! "move this VM there now".

use vecycle_checkpoint::PartialCheckpoint;
use vecycle_faults::{FaultCause, FaultKind, FaultPlan, RetryPolicy};
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::GuestWorkload, Guest, MutableMemory};
use vecycle_net::TrafficLedger;
use vecycle_obs::{layouts, MetricsRegistry};
use vecycle_types::{Bytes, Error, HostId, SimDuration, SimTime, VmId};

use crate::{LiveOutcome, MigrationEngine, MigrationOutcome, MigrationReport, SetupReport};

/// What first-round technique the session applies when a checkpoint is
/// (or is not) available at the destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecyclePolicy {
    /// Always full migrations (the QEMU baseline).
    Baseline,
    /// Sender-side dedup only.
    DedupOnly,
    /// VeCycle: recycle a destination checkpoint when present, falling
    /// back to dedup when none exists (as §4.6 assumes: "VeCycle still
    /// uses deduplication").
    VeCycle,
    /// Adaptive: probe a page sample against the destination checkpoint
    /// and only recycle when the estimated similarity clears
    /// `min_similarity` — busy VMs skip the checksum pass entirely
    /// (§2.3: "an active VM with no idle intervals will only gain a
    /// small benefit from a local checkpoint").
    Adaptive {
        /// Minimum estimated similarity to engage VeCycle.
        min_similarity: f64,
    },
}

mod events;
mod lifecycle;

pub use events::{FaultedScheduleRun, ScheduleSummary, SessionEvent};

/// A placed VM: guest state plus its current host.
#[derive(Debug)]
pub struct VmInstance<M> {
    id: VmId,
    guest: Guest<M>,
    location: HostId,
}

impl<M: MutableMemory> VmInstance<M> {
    /// Places a guest on `host`.
    pub fn new(id: VmId, guest: Guest<M>, host: HostId) -> Self {
        VmInstance {
            id,
            guest,
            location: host,
        }
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Where the VM currently runs.
    pub fn location(&self) -> HostId {
        self.location
    }

    /// The guest state.
    pub fn guest(&self) -> &Guest<M> {
        &self.guest
    }

    /// Mutable guest state (for driving workloads between migrations).
    pub fn guest_mut(&mut self) -> &mut Guest<M> {
        &mut self.guest
    }
}

/// Drives checkpoint-recycled migrations across a [`Cluster`].
#[derive(Debug)]
pub struct VeCycleSession {
    cluster: Cluster,
    engine: MigrationEngine,
    policy: RecyclePolicy,
    retry: RetryPolicy,
}

impl VeCycleSession {
    /// Creates a session over `cluster` with the VeCycle policy, an
    /// engine configured from the cluster's link, and the default
    /// [`RetryPolicy`].
    pub fn new(cluster: Cluster) -> Self {
        let engine = MigrationEngine::new(cluster.link());
        VeCycleSession {
            cluster,
            engine,
            policy: RecyclePolicy::VeCycle,
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RecyclePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: MigrationEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the retry policy for faulted migrations.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Shares a metrics registry with this session (and its engine).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.engine = self.engine.with_metrics(metrics);
        self
    }

    /// The metrics registry (the engine's — session and engine always
    /// share one, so wire counters and session counters land together).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    /// Appends a transcript event *and* bumps its typed counter in one
    /// step — the only way session code records an incident, so the two
    /// accountings cannot drift.
    fn record_event(&self, events: &mut Vec<SessionEvent>, event: SessionEvent) {
        self.metrics()
            .inc("session_events_total", &[("event", event.kind())], 1);
        events.push(event);
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Migrates `vm` to `to` at simulated instant `now`, running
    /// `workload` inside the guest during the copy rounds.
    ///
    /// Implements the full cycle: pick a strategy from the destination's
    /// checkpoint store, run the pre-copy engine, store a fresh
    /// checkpoint of the *post-migration* state at the source (the host
    /// being vacated), and update the VM's location.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `to` is not in the cluster or the
    /// VM's current host is unknown, and propagates engine errors.
    pub fn migrate<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        to: HostId,
        now: SimTime,
        workload: &mut W,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        self.migrate_with_faults(
            vm,
            to,
            now,
            workload,
            &FaultPlan::none(),
            0,
            &mut Vec::new(),
        )
    }

    /// Migrates `vm` to `to` under the faults `plan` assigns to leg
    /// `leg`, retrying per the session's [`RetryPolicy`]. Incidents are
    /// appended to `events` in occurrence order.
    ///
    /// Fault-induced failures are *data*, not errors: an attempt killed
    /// by an injected link drop is retried (recycling the aborted
    /// attempt's landed pages as a [`PartialCheckpoint`] when the policy
    /// allows), and a migration that exhausts every attempt returns a
    /// report with [`MigrationOutcome::Failed`] and the VM still at the
    /// source. `Err` is reserved for real problems: unknown hosts,
    /// filesystem failures, engine invariant violations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotFound`] if `to` is not in the cluster or the
    /// VM's current host is unknown, and propagates engine and
    /// durable-store errors.
    #[allow(clippy::too_many_arguments)]
    pub fn migrate_with_faults<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        to: HostId,
        now: SimTime,
        workload: &mut W,
        plan: &FaultPlan,
        leg: usize,
        events: &mut Vec<SessionEvent>,
    ) -> vecycle_types::Result<MigrationReport>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let source = self
            .cluster
            .host(vm.location)
            .ok_or_else(|| Error::NotFound {
                what: format!("source host {}", vm.location),
            })?
            .clone();
        let dest = self
            .cluster
            .host(to)
            .ok_or_else(|| Error::NotFound {
                what: format!("destination host {to}"),
            })?
            .clone();

        let inject_corrupt = plan.has(leg, |f| matches!(f, FaultKind::CheckpointCorrupt));
        let crash_on_save = plan.has(leg, |f| matches!(f, FaultKind::CrashDuringSave));
        let mut fetch = self.fetch_checkpoint(vm.id, &dest, inject_corrupt, events)?;
        self.metrics().inc(
            "session_checkpoint_fetch_total",
            &[("result", fetch.label())],
            1,
        );
        // The attempts this migration makes are *derived from the metrics
        // layer*: the counter delta across the retry loop is the one
        // source of truth the outcome reports (the transcript's
        // `AttemptAborted`/`RetryScheduled` counts must reconcile with it
        // — tested in `tests/metrics_golden.rs`).
        let attempts_before = self.metrics().counter("session_attempts_total", &[]);

        let mut partial: Option<PartialCheckpoint> = None;
        let mut wasted_traffic = Bytes::ZERO;
        let mut wasted_time = SimDuration::ZERO;
        let mut attempt = 1u32;
        loop {
            self.metrics().inc("session_attempts_total", &[], 1);
            let attempt_faults = plan.for_attempt(leg, attempt);
            let (strategy, cause) = self.strategy_for(vm, &fetch, partial.as_ref());
            let strategy_name = strategy.name();
            match self.engine.migrate_live_faulted(
                &mut vm.guest,
                workload,
                strategy,
                &attempt_faults,
            )? {
                LiveOutcome::Completed(mut report) => {
                    let attempts = (self.metrics().counter("session_attempts_total", &[])
                        - attempts_before) as u32;
                    let outcome = if attempts > 1 {
                        MigrationOutcome::CompletedAfterRetries { attempts }
                    } else if let Some(cause) = cause {
                        MigrationOutcome::FellBackToFull { cause }
                    } else {
                        MigrationOutcome::Completed
                    };
                    self.metrics().inc(
                        "session_outcomes_total",
                        &[("outcome", outcome.label())],
                        1,
                    );
                    report.set_outcome(outcome);
                    report.add_waste(wasted_traffic, wasted_time);

                    self.persist_checkpoint(vm, &source, now, crash_on_save, &mut report, events)?;
                    vm.location = to;
                    return Ok(report);
                }
                LiveOutcome::Aborted(aborted) => {
                    wasted_traffic += aborted.traffic;
                    wasted_time = wasted_time.saturating_add(aborted.elapsed);
                    self.metrics().inc(
                        "faults_observed_total",
                        &[("cause", aborted.cause.label())],
                        1,
                    );
                    self.record_event(
                        events,
                        SessionEvent::AttemptAborted {
                            vm: vm.id,
                            attempt,
                            cause: aborted.cause,
                            landed: aborted.landed_pages(),
                        },
                    );
                    if aborted.cause == FaultCause::HostCrash {
                        // The destination died mid-transfer: its in-memory
                        // catalog (and any landed pages) are gone. Play out
                        // the restart — re-open the disk store, scrub it —
                        // before deciding whether to retry, so even a
                        // migration out of attempts leaves the cluster in
                        // its post-restart state.
                        self.crash_and_restart(&dest, events)?;
                    }
                    if attempt >= self.retry.max_attempts {
                        self.metrics()
                            .inc("session_outcomes_total", &[("outcome", "failed")], 1);
                        self.record_event(
                            events,
                            SessionEvent::MigrationFailed {
                                vm: vm.id,
                                cause: aborted.cause,
                            },
                        );
                        let mut report = MigrationReport::new(
                            strategy_name,
                            vm.guest.ram_size(),
                            Vec::new(),
                            SimDuration::ZERO,
                            SetupReport::default(),
                            TrafficLedger::new(),
                            TrafficLedger::new(),
                        );
                        report.set_outcome(MigrationOutcome::Failed {
                            cause: aborted.cause,
                        });
                        report.set_converged(false);
                        report.add_waste(wasted_traffic, wasted_time);
                        // The VM never left; no checkpoint is written and
                        // its location does not change.
                        return Ok(report);
                    }
                    let next = attempt + 1;
                    let backoff = self.retry.backoff_before(next);
                    self.metrics().inc("session_retries_total", &[], 1);
                    self.metrics().observe(
                        "session_backoff_sim_millis",
                        &[],
                        layouts::SIM_MILLIS,
                        backoff.as_nanos() / 1_000_000,
                    );
                    self.record_event(
                        events,
                        SessionEvent::RetryScheduled {
                            vm: vm.id,
                            attempt: next,
                            backoff,
                        },
                    );
                    // The guest keeps running (and dirtying pages) at the
                    // source while the session waits out the backoff.
                    workload.advance(&mut vm.guest, backoff);
                    wasted_time = wasted_time.saturating_add(backoff);
                    if aborted.cause == FaultCause::HostCrash {
                        // Landed pages died with the destination — there is
                        // nothing to resume from. Re-fetch instead: the
                        // restarted host's scrubbed disk store decides what
                        // the next attempt can recycle.
                        partial = None;
                        fetch = self.fetch_checkpoint(vm.id, &dest, false, events)?;
                        self.metrics().inc(
                            "session_checkpoint_fetch_total",
                            &[("result", fetch.label())],
                            1,
                        );
                    } else if self.retry.resume_from_partial
                        && !matches!(self.policy, RecyclePolicy::Baseline)
                        && aborted.landed_pages().as_u64() > 0
                    {
                        self.record_event(
                            events,
                            SessionEvent::ResumedFromPartial {
                                vm: vm.id,
                                attempt: next,
                                landed: aborted.landed_pages(),
                            },
                        );
                        let resumed = PartialCheckpoint::new(vm.id, aborted.landed);
                        vecycle_checkpoint::observe_partial(self.metrics(), &resumed);
                        partial = Some(resumed);
                    }
                    attempt = next;
                }
            }
        }
    }

    /// Runs a [`MigrationSchedule`], advancing `workload` through the
    /// gaps between migrations so the guest keeps aging between moves.
    ///
    /// Returns one report per leg, in schedule order.
    ///
    /// # Errors
    ///
    /// Fails on the first leg whose source host does not match the VM's
    /// current location (an inconsistent schedule) or whose migration
    /// fails.
    pub fn run_schedule<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        schedule: &MigrationSchedule,
        workload: &mut W,
    ) -> vecycle_types::Result<Vec<MigrationReport>>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        let mut reports = Vec::with_capacity(schedule.len());
        let mut clock = SimTime::EPOCH;
        for leg in schedule {
            if leg.from != vm.location {
                return Err(Error::InvalidConfig {
                    reason: format!(
                        "schedule expects {} at {} but it is at {}",
                        vm.id, leg.from, vm.location
                    ),
                });
            }
            let gap = leg.at.duration_since(clock);
            workload.advance(&mut vm.guest, gap);
            clock = leg.at;
            reports.push(self.migrate(vm, leg.to, clock, workload)?);
        }
        Ok(reports)
    }

    /// Runs a [`MigrationSchedule`] under fault injection.
    ///
    /// Unlike [`VeCycleSession::run_schedule`], a failed migration does
    /// not poison the run: the VM simply stays where it is, and later
    /// legs adapt — a leg whose destination is the VM's current host is
    /// skipped (the failure already "achieved" it), any other leg
    /// migrates from the VM's *actual* location rather than the
    /// scheduled one.
    ///
    /// # Errors
    ///
    /// Propagates only non-fault errors (unknown hosts, filesystem
    /// failures); injected faults never produce an `Err`.
    pub fn run_schedule_with_faults<M, W>(
        &self,
        vm: &mut VmInstance<M>,
        schedule: &MigrationSchedule,
        workload: &mut W,
        plan: &FaultPlan,
    ) -> vecycle_types::Result<FaultedScheduleRun>
    where
        M: MutableMemory,
        W: GuestWorkload<M>,
    {
        vecycle_faults::observe_plan(self.metrics(), plan);
        let mut reports = Vec::with_capacity(schedule.len());
        let mut events = Vec::new();
        let mut clock = SimTime::EPOCH;
        for (leg_idx, leg) in schedule.legs().iter().enumerate() {
            let gap = leg.at.duration_since(clock);
            workload.advance(&mut vm.guest, gap);
            clock = leg.at;
            if leg.to == vm.location {
                continue;
            }
            reports.push(self.migrate_with_faults(
                vm,
                leg.to,
                clock,
                workload,
                plan,
                leg_idx,
                &mut events,
            )?);
        }
        Ok(FaultedScheduleRun { reports, events })
    }
}
