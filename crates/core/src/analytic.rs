//! Trace-level method comparison (Figure 5's methodology).
//!
//! "We constructed all possible fingerprint pairs for each of the
//! machines ... For every pair, we calculated how many pages each
//! technique would transfer." This module aggregates
//! [`vecycle_trace::PairStats`] over a trace into the mean
//! fraction-of-baseline bars and the CDF series of Figure 5.

use vecycle_trace::{Fingerprint, PairStats};
use vecycle_types::Ratio;

/// Mean fraction-of-baseline traffic per method, over sampled pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodMeans {
    /// Number of fingerprint pairs aggregated.
    pub pairs: u64,
    /// Sender-side deduplication.
    pub dedup: Ratio,
    /// Dirty-page tracking.
    pub dirty: Ratio,
    /// Dirty tracking + dedup.
    pub dirty_dedup: Ratio,
    /// Content-based redundancy elimination (VeCycle).
    pub hashes: Ratio,
    /// VeCycle + dedup.
    pub hashes_dedup: Ratio,
}

/// Full Figure 5 data for one machine's trace.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Mean bars (Figure 5 left).
    pub means: MethodMeans,
    /// Per-pair reduction of `hashes+dedup` over `dirty+dedup`, in
    /// percent (Figure 5 center/right CDFs). One entry per sampled pair
    /// with a non-empty dirty+dedup transfer set.
    pub reduction_over_dirty_dedup_pct: Vec<f64>,
}

/// Aggregates the Figure 5 methods over the ordered-pair set of a trace.
///
/// `stride` subsamples pairs deterministically (`1` = all pairs, `k` =
/// every k-th pair in enumeration order) — full 337-fingerprint traces
/// have ~56 k pairs, which is exact but slow in debug builds.
///
/// # Panics
///
/// Panics if `stride` is zero.
pub fn summarize_methods(fingerprints: &[Fingerprint], stride: usize) -> MethodSummary {
    assert!(stride > 0, "stride must be positive");
    let mut pairs = 0u64;
    let mut sums = [0.0f64; 5];
    let mut reductions = Vec::new();
    let mut counter = 0usize;

    for (i, fa) in fingerprints.iter().enumerate() {
        for fb in &fingerprints[i + 1..] {
            counter += 1;
            if !(counter - 1).is_multiple_of(stride) {
                continue;
            }
            let stats = PairStats::compute(fa, fb);
            if stats.total == 0 {
                continue;
            }
            pairs += 1;
            let f = stats.fractions();
            for (slot, frac) in sums.iter_mut().zip(f) {
                *slot += frac.as_f64();
            }
            if stats.dirty_dedup > 0 {
                let red = (1.0 - stats.hashes_dedup as f64 / stats.dirty_dedup as f64) * 100.0;
                reductions.push(red);
            }
        }
    }

    let mean = |i: usize| {
        if pairs == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(sums[i] / pairs as f64)
        }
    };
    MethodSummary {
        means: MethodMeans {
            pairs,
            dedup: mean(0),
            dirty: mean(1),
            dirty_dedup: mean(2),
            hashes: mean(3),
            hashes_dedup: mean(4),
        },
        reduction_over_dirty_dedup_pct: reductions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_types::{PageDigest, SimDuration, SimTime};

    fn fp(mins: u64, ids: &[u64]) -> Fingerprint {
        Fingerprint::new(
            SimTime::EPOCH + SimDuration::from_mins(mins),
            ids.iter()
                .map(|&i| PageDigest::from_content_id(i))
                .collect(),
        )
    }

    #[test]
    fn summary_over_identical_fingerprints() {
        let fps = vec![fp(0, &[1, 2, 3, 4]), fp(30, &[1, 2, 3, 4])];
        let s = summarize_methods(&fps, 1);
        assert_eq!(s.means.pairs, 1);
        // Nothing is dirty; nothing novel.
        assert_eq!(s.means.dirty.as_f64(), 0.0);
        assert_eq!(s.means.hashes.as_f64(), 0.0);
        assert_eq!(s.means.dedup.as_f64(), 1.0); // all unique: full dedup cost
        assert!(s.reduction_over_dirty_dedup_pct.is_empty());
    }

    #[test]
    fn method_ordering_holds_on_synthetic_trace() {
        // A trace with churn, relocation and duplication.
        let fps = vec![
            fp(0, &[1, 2, 3, 4, 5, 6, 7, 8]),
            fp(30, &[1, 2, 9, 4, 5, 3, 7, 7]),
            fp(60, &[10, 2, 9, 4, 11, 3, 7, 7]),
        ];
        let s = summarize_methods(&fps, 1);
        assert_eq!(s.means.pairs, 3);
        let m = s.means;
        assert!(m.hashes_dedup.as_f64() <= m.hashes.as_f64() + 1e-12);
        assert!(m.hashes.as_f64() <= m.dirty.as_f64() + 1e-12);
        assert!(m.dirty_dedup.as_f64() <= m.dirty.as_f64() + 1e-12);
    }

    #[test]
    fn stride_subsamples() {
        let fps: Vec<_> = (0..10).map(|i| fp(i * 30, &[i, i + 1])).collect();
        let all = summarize_methods(&fps, 1);
        let some = summarize_methods(&fps, 5);
        assert_eq!(all.means.pairs, 45);
        assert_eq!(some.means.pairs, 9);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = summarize_methods(&[], 0);
    }
}
