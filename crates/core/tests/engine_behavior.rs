//! Behavioral tests of the migration engine's public API: every driver
//! (static, gang, live, faulted) over the shared transfer pipeline.

use vecycle_core::{
    DeltaCompression, ExchangeProtocol, LiveOutcome, MigrationEngine, Strategy, Xbzrle,
};
use vecycle_faults::{AttemptFaults, DropPoint, FaultCause};
use vecycle_mem::workload::{GuestWorkload, IdleWorkload, SilentWorkload};
use vecycle_mem::{DigestMemory, Guest, MemoryImage, MutableMemory, PageContent};
use vecycle_net::{wire, LinkSpec};
use vecycle_types::{Bytes, PageCount, PageIndex, SimDuration};

fn mem(mib: u64, seed: u64) -> DigestMemory {
    DigestMemory::with_uniform_content(Bytes::from_mib(mib), seed).unwrap()
}

#[test]
fn full_migration_sends_whole_ram() {
    let vm = mem(16, 1);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine.migrate(&vm, Strategy::full()).unwrap();
    assert_eq!(r.pages_sent_full(), vm.page_count());
    // Traffic is RAM plus per-page framing.
    assert!(r.source_traffic() > vm.ram_size());
    let overhead = r.source_traffic().as_f64() / vm.ram_size().as_f64();
    assert!(overhead < 1.01, "framing overhead too large: {overhead}");
    assert_eq!(r.reverse_traffic(), Bytes::ZERO);
}

#[test]
fn identical_checkpoint_reduces_traffic_by_two_orders() {
    let vm = mem(16, 1);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine
        .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
        .unwrap();
    assert_eq!(r.pages_sent_full(), PageCount::ZERO);
    assert_eq!(r.pages_reused(), vm.page_count());
    // 28 bytes replace 4124: ~99% reduction (paper: 1 GB -> 15 MB).
    let frac = r.traffic_fraction_of_ram().as_f64();
    assert!(frac < 0.01, "fraction = {frac}");
}

#[test]
fn lan_times_match_figure_6() {
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    // Full migration of 1 GiB: "around 10 seconds".
    let vm1 = mem(1024, 2);
    let full = engine.migrate(&vm1, Strategy::full()).unwrap();
    let t = full.total_time().as_secs_f64();
    assert!(t > 8.0 && t < 11.0, "full 1 GiB took {t}");
    // VeCycle on an idle VM: checksum-rate bound, ~3 s.
    let re = engine
        .migrate(&vm1, Strategy::vecycle(&vm1.snapshot()))
        .unwrap();
    let t = re.total_time().as_secs_f64();
    assert!(t > 2.5 && t < 3.5, "vecycle 1 GiB took {t}");
}

#[test]
fn wan_reduction_is_dramatic() {
    let engine = MigrationEngine::new(LinkSpec::wan_cloudnet());
    let vm = mem(1024, 3);
    let full = engine.migrate(&vm, Strategy::full()).unwrap();
    let re = engine
        .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
        .unwrap();
    // Paper: 177 s -> 16 s for 1 GiB.
    let tf = full.total_time().as_secs_f64();
    let tr = re.total_time().as_secs_f64();
    assert!(tf > 150.0, "full WAN took {tf}");
    assert!(tr < 25.0, "vecycle WAN took {tr}");
}

#[test]
fn dedup_reduces_traffic_on_duplicated_memory() {
    // Half the pages duplicate the other half.
    let mut vm = mem(8, 4);
    let n = vm.page_count().as_u64();
    for i in 0..n / 2 {
        vm.relocate_page(PageIndex::new(i), PageIndex::new(i + n / 2));
    }
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let full = engine.migrate(&vm, Strategy::full()).unwrap();
    let dedup = engine.migrate(&vm, Strategy::dedup()).unwrap();
    assert!(dedup.source_traffic().as_f64() < full.source_traffic().as_f64() * 0.55);
    let r = dedup.rounds()[0].dedup_refs;
    assert_eq!(r, PageCount::new(n / 2));
}

#[test]
fn partial_overlap_scales_traffic() {
    // 25% of pages changed since checkpoint: traffic ≈ 25% of full.
    let vm0 = mem(16, 5);
    let mut vm = vm0.snapshot();
    let n = vm.page_count().as_u64();
    for i in 0..n / 4 {
        vm.write_page(PageIndex::new(i * 4), PageContent::ContentId(1 << 50 | i));
    }
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine.migrate(&vm, Strategy::vecycle(&vm0)).unwrap();
    let frac = r.traffic_fraction_of_ram().as_f64();
    assert!((frac - 0.25).abs() < 0.02, "fraction = {frac}");
}

#[test]
fn live_migration_with_idle_workload_converges() {
    let mut guest = Guest::new(mem(8, 6));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let mut wl = IdleWorkload::new(7, 50.0);
    let r = engine
        .migrate_live(&mut guest, &mut wl, Strategy::full())
        .unwrap();
    assert!(!r.rounds().is_empty());
    assert!(r.downtime() <= SimDuration::from_millis(400));
    // All of RAM went over plus the dirty residue.
    assert!(r.pages_sent_full() >= guest.page_count());
}

#[test]
fn live_migration_silent_workload_is_single_round() {
    let mut guest = Guest::new(mem(4, 8));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine
        .migrate_live(&mut guest, &mut SilentWorkload, Strategy::full())
        .unwrap();
    assert_eq!(r.rounds().len(), 1);
    assert_eq!(r.pages_sent_full(), guest.page_count());
}

#[test]
fn round_limit_bounds_busy_guests() {
    let mut guest = Guest::new(mem(4, 9));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_max_rounds(3);
    // Very hot workload that would never converge.
    let mut wl = IdleWorkload::new(10, 200_000.0);
    let r = engine
        .migrate_live(&mut guest, &mut wl, Strategy::full())
        .unwrap();
    assert!(r.rounds().len() <= 3);
    assert!(r.downtime() > SimDuration::ZERO);
}

#[test]
fn per_page_protocol_is_slower_but_skips_bulk_exchange() {
    let vm = mem(16, 11);
    let cp = vm.snapshot();
    let bulk = MigrationEngine::new(LinkSpec::wan_cloudnet());
    let perpage = MigrationEngine::new(LinkSpec::wan_cloudnet())
        .with_exchange(ExchangeProtocol::PerPage { pipeline_depth: 16 });
    let rb = bulk.migrate(&vm, Strategy::vecycle(&cp)).unwrap();
    let rp = perpage.migrate(&vm, Strategy::vecycle(&cp)).unwrap();
    assert!(rp.total_time() > rb.total_time() * 5);
    assert!(!rb.setup().exchange_bytes.is_zero());
    assert!(rp.setup().exchange_bytes.is_zero());
}

#[test]
fn xbzrle_shrinks_resend_rounds() {
    let run = |engine: MigrationEngine| {
        let mut guest = Guest::new(mem(8, 40));
        let mut wl = IdleWorkload::new(41, 30_000.0);
        engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap()
    };
    // A 1 ms downtime target forces genuine re-send rounds.
    let plain = run(MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_rounds(4)
        .with_max_downtime(SimDuration::from_millis(1)));
    let xb = run(MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_rounds(4)
        .with_max_downtime(SimDuration::from_millis(1))
        .with_xbzrle(Xbzrle::new(0.9, 0.1)));
    // Round 1 is identical; later rounds carry deltas instead of
    // full pages.
    assert!(xb.source_traffic() < plain.source_traffic());
    assert_eq!(xb.rounds()[0].bytes_sent, plain.rounds()[0].bytes_sent);
    if xb.rounds().len() > 1 && plain.rounds().len() > 1 {
        let per_page_xb =
            xb.rounds()[1].bytes_sent.as_f64() / xb.rounds()[1].full_pages.as_u64().max(1) as f64;
        let per_page_plain = plain.rounds()[1].bytes_sent.as_f64()
            / plain.rounds()[1].full_pages.as_u64().max(1) as f64;
        assert!(per_page_xb < per_page_plain * 0.3);
    }
}

#[test]
fn similarity_estimator_tracks_truth() {
    let base = mem(16, 42);
    let mut vm = base.snapshot();
    let n = vm.page_count().as_u64();
    for i in 0..n / 2 {
        vm.write_page(PageIndex::new(i * 2), PageContent::ContentId((1 << 59) | i));
    }
    let index = vecycle_checkpoint::ChecksumIndex::build(base.digests());
    let est = MigrationEngine::estimate_similarity(&vm, &index, 512).as_f64();
    assert!((est - 0.5).abs() < 0.1, "estimate = {est}");
    // Extremes.
    assert_eq!(
        MigrationEngine::estimate_similarity(&base, &index, 64).as_f64(),
        1.0
    );
}

#[test]
#[should_panic(expected = "xbzrle parameters")]
fn invalid_xbzrle_panics() {
    let _ = Xbzrle::new(1.5, 0.1);
}

#[test]
fn gang_migration_dedups_across_vms() {
    // Two VMs sharing most content (e.g. same guest OS image).
    let a = mem(8, 30);
    let mut b = a.snapshot();
    let n = b.page_count().as_u64();
    for i in 0..n / 10 {
        b.write_page(PageIndex::new(i), PageContent::ContentId((1 << 55) | i));
    }
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let gang = engine
        .migrate_gang(&[&a, &b], &[Strategy::dedup(), Strategy::dedup()])
        .unwrap();
    let solo_b = engine.migrate(&b, Strategy::dedup()).unwrap();
    // Solo, B sends nearly everything; in the gang, 90% of B's pages
    // were already sent by A and collapse to references.
    assert!(gang[1].source_traffic().as_f64() < solo_b.source_traffic().as_f64() * 0.2);
    // A itself pays full price either way.
    let solo_a = engine.migrate(&a, Strategy::dedup()).unwrap();
    assert_eq!(gang[0].source_traffic(), solo_a.source_traffic());
}

#[test]
fn gang_without_dedup_gains_nothing() {
    let a = mem(4, 31);
    let b = a.snapshot();
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let gang = engine
        .migrate_gang(&[&a, &b], &[Strategy::full(), Strategy::full()])
        .unwrap();
    let solo = engine.migrate(&b, Strategy::full()).unwrap();
    assert_eq!(gang[1].source_traffic(), solo.source_traffic());
}

#[test]
fn gang_combines_per_vm_checkpoints_with_shared_dedup() {
    // Each VM has its own checkpoint at the destination *and* the
    // gang shares a dedup cache: novel-but-shared content crosses
    // once.
    let a0 = mem(4, 33);
    let mut a1 = a0.snapshot();
    let b0 = mem(4, 34);
    let mut b1 = b0.snapshot();
    let n = a1.page_count().as_u64();
    // Both VMs gain the *same* novel content (e.g. a software
    // update applied to both).
    for i in 0..n / 4 {
        let content = PageContent::ContentId((1 << 53) | i);
        a1.write_page(PageIndex::new(i), content);
        b1.write_page(PageIndex::new(i), content);
    }
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let strategies = vec![
        Strategy::vecycle(&a0).with_dedup(),
        Strategy::vecycle(&b0).with_dedup(),
    ];
    let gang = engine.migrate_gang(&[&a1, &b1], &strategies).unwrap();
    // VM a pays for the novel quarter once...
    assert_eq!(gang[0].pages_sent_full(), PageCount::new(n / 4));
    // ...and VM b references it all: zero full pages.
    assert_eq!(gang[1].pages_sent_full(), PageCount::ZERO);
    assert_eq!(gang[1].rounds()[0].dedup_refs, PageCount::new(n / 4));
}

#[test]
fn gang_validates_inputs() {
    let a = mem(4, 32);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    assert!(engine.migrate_gang::<DigestMemory>(&[], &[]).is_err());
    assert!(engine.migrate_gang(&[&a], &[]).is_err());
}

#[test]
fn empty_image_is_rejected() {
    let vm = DigestMemory::zeroed(PageCount::ZERO);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    assert!(engine.migrate(&vm, Strategy::full()).is_err());
}

#[test]
fn zero_pages_are_suppressed_by_default() {
    // A freshly booted guest is mostly zeros; QEMU (and thus the
    // baseline) ships markers, not pages.
    let vm = DigestMemory::zeroed(PageCount::new(1024));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine.migrate(&vm, Strategy::full()).unwrap();
    assert_eq!(r.pages_sent_full(), PageCount::ZERO);
    assert_eq!(r.zero_pages(), PageCount::new(1024));
    assert!(r.source_traffic() < Bytes::from_kib(16));
}

#[test]
fn zero_suppression_can_be_disabled() {
    let vm = DigestMemory::zeroed(PageCount::new(256));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_zero_page_suppression(false);
    let r = engine.migrate(&vm, Strategy::full()).unwrap();
    assert_eq!(r.pages_sent_full(), PageCount::new(256));
    assert_eq!(r.zero_pages(), PageCount::ZERO);
}

#[test]
fn zero_marker_beats_checksum_message_under_vecycle() {
    // Zero pages present in the checkpoint could go as 28-byte
    // checksum messages; the 13-byte marker wins instead.
    let vm = DigestMemory::zeroed(PageCount::new(128));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine
        .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
        .unwrap();
    assert_eq!(r.zero_pages(), PageCount::new(128));
    assert_eq!(r.pages_reused(), PageCount::ZERO);
}

#[test]
fn compression_shrinks_traffic() {
    let vm = mem(16, 20);
    let plain = MigrationEngine::new(LinkSpec::lan_gigabit());
    let compressed = MigrationEngine::new(LinkSpec::lan_gigabit()).with_compression(
        DeltaCompression::new(0.5, vecycle_types::BytesPerSec::from_mib_per_sec(800)),
    );
    let rp = plain.migrate(&vm, Strategy::full()).unwrap();
    let rc = compressed.migrate(&vm, Strategy::full()).unwrap();
    assert!(rc.source_traffic().as_f64() < rp.source_traffic().as_f64() * 0.55);
    assert_eq!(rc.pages_sent_full(), rp.pages_sent_full());
}

#[test]
fn slow_compressor_becomes_the_bottleneck() {
    let vm = mem(64, 21);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_compression(
        DeltaCompression::new(0.9, vecycle_types::BytesPerSec::from_mib_per_sec(30)),
    );
    let r = engine.migrate(&vm, Strategy::full()).unwrap();
    // 64 MiB at 30 MiB/s ≈ 2.1 s of compression vs ~0.5 s of wire.
    assert!(r.total_time().as_secs_f64() > 2.0);
}

#[test]
#[should_panic(expected = "compression ratio")]
fn invalid_compression_ratio_panics() {
    let _ = DeltaCompression::new(0.0, vecycle_types::BytesPerSec::from_mib_per_sec(100));
}

#[test]
fn setup_is_excluded_from_migration_time() {
    let vm = mem(64, 12);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let r = engine
        .migrate(&vm, Strategy::vecycle(&vm.snapshot()))
        .unwrap();
    assert!(r.setup().total() > SimDuration::ZERO);
    assert!(r.setup().checkpoint_read > SimDuration::ZERO);
    // total_time must not include the setup term.
    let rounds_plus_down: SimDuration =
        r.rounds().iter().map(|x| x.duration).sum::<SimDuration>() + r.downtime();
    assert_eq!(r.total_time(), rounds_plus_down);
}

/// Rewrites pages `0..k` with *fixed* content ids every advance: the
/// pages are dirtied, but their digests never change.
struct RewriteSameContent {
    k: u64,
}

impl<M: MutableMemory> GuestWorkload<M> for RewriteSameContent {
    fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
        for i in 0..self.k {
            let idx = PageIndex::new(i);
            guest.write_page(idx, PageContent::ContentId(1_000 + i));
        }
    }
}

#[test]
fn live_vecycle_resends_known_content_as_checksums() {
    // Pin pages 0..100 to known content, checkpoint, then keep
    // rewriting those pages with the *same* content during the
    // migration. The destination's checkpoint holds every re-dirtied
    // page, so rounds ≥ 2 must collapse to 28-byte checksum
    // messages — not full pages.
    let mut image = mem(8, 60);
    for i in 0..100 {
        image.write_page(PageIndex::new(i), PageContent::ContentId(1_000 + i));
    }
    let cp = image.snapshot();
    let mut guest = Guest::new(image);
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_rounds(3)
        .with_max_downtime(SimDuration::from_millis(1));
    let mut wl = RewriteSameContent { k: 100 };
    let r = engine
        .migrate_live(&mut guest, &mut wl, Strategy::vecycle(&cp))
        .unwrap();
    assert!(r.rounds().len() >= 2, "workload must force resend rounds");
    for round in &r.rounds()[1..] {
        assert_eq!(round.full_pages, PageCount::ZERO, "round {}", round.round);
        assert_eq!(
            round.checksum_pages,
            PageCount::new(100),
            "round {}",
            round.round
        );
        // 100 × 28-byte checksum messages, nothing else.
        assert_eq!(round.bytes_sent, wire::checksum_msg() * 100);
    }
}

/// Zeroes pages `0..k` on every advance.
struct ZeroingWorkload {
    k: u64,
}

impl<M: MutableMemory> GuestWorkload<M> for ZeroingWorkload {
    fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
        for i in 0..self.k {
            guest.write_page(PageIndex::new(i), PageContent::ContentId(0));
        }
    }
}

#[test]
fn stop_and_copy_suppresses_zero_residue() {
    // The guest zeroes 512 pages during round 1; with a single round
    // allowed, that residue goes through stop-and-copy. Suppressed,
    // it is 512 × 13-byte markers; unsuppressed it would be
    // 512 × 4 KiB pages — more than two milliseconds on gigabit.
    let run = |suppress: bool| {
        let mut guest = Guest::new(mem(8, 61));
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(1)
            .with_zero_page_suppression(suppress);
        engine
            .migrate_live(
                &mut guest,
                &mut ZeroingWorkload { k: 512 },
                Strategy::full(),
            )
            .unwrap()
    };
    let suppressed = run(true);
    let unsuppressed = run(false);
    assert!(suppressed.downtime() < unsuppressed.downtime());
    // Residue bytes: 512 markers ≪ one full page.
    let marker_bytes = wire::zero_page_msg() * 512;
    let budget = LinkSpec::lan_gigabit()
        .transfer_time(marker_bytes + wire::full_page_msg())
        .saturating_add(LinkSpec::lan_gigabit().round_trip());
    assert!(
        suppressed.downtime() <= budget,
        "downtime {:?} exceeds zero-marker budget {:?}",
        suppressed.downtime(),
        budget
    );
}

/// Dirties exactly `k` fresh-content pages per advance, independent
/// of round duration.
struct FixedDirtier {
    k: u64,
    next: u64,
}

impl<M: MutableMemory> GuestWorkload<M> for FixedDirtier {
    fn advance(&mut self, guest: &mut Guest<M>, _dur: SimDuration) {
        for i in 0..self.k {
            let idx = PageIndex::new(i);
            guest.write_page(idx, PageContent::ContentId((1 << 62) | self.next));
            self.next += 1;
        }
    }
}

#[test]
fn downtime_budget_uses_actual_resend_size() {
    // 1 ms on gigabit fits ~30 uncompressed full-page messages but
    // hundreds of XBZRLE deltas. A constant 100-page dirty set
    // therefore never converges with plain resends, yet fits the
    // final round immediately once deltas shrink the residue — the
    // budget division must use the active per-page wire size, not
    // the uncompressed one.
    let run = |engine: MigrationEngine| {
        let mut guest = Guest::new(mem(8, 62));
        let mut wl = FixedDirtier { k: 100, next: 0 };
        engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap()
    };
    let base = MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_rounds(6)
        .with_max_downtime(SimDuration::from_millis(1));
    let plain = run(base.clone());
    let xb = run(base.with_xbzrle(Xbzrle::new(0.95, 0.02)));
    assert_eq!(plain.rounds().len(), 6, "plain resends can never fit 1 ms");
    assert_eq!(
        xb.rounds().len(),
        1,
        "100 deltas fit the downtime budget without extra rounds"
    );
    assert!(xb.downtime() <= SimDuration::from_millis(1));
}

#[test]
fn parallel_scan_is_bit_identical_to_sequential() {
    // A workload mixing every message class: checkpoint hits
    // (checksums), fresh content (full pages), duplicated fresh
    // content (dedup refs), and zero pages.
    let base = mem(8, 63);
    let mut vm = base.snapshot();
    let n = vm.page_count().as_u64();
    for i in 0..n / 4 {
        vm.write_page(
            PageIndex::new(i * 2),
            PageContent::ContentId((1 << 48) | (i % 64)),
        );
    }
    for i in 0..n / 16 {
        vm.write_page(PageIndex::new(i * 16 + 1), PageContent::ContentId(0));
    }
    let strategies: Vec<Strategy> = vec![
        Strategy::full(),
        Strategy::dedup(),
        Strategy::vecycle(&base),
        Strategy::vecycle(&base).with_dedup(),
    ];
    for strategy in &strategies {
        let seq_engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        let (seq_report, seq_transcript) = seq_engine
            .migrate_with_transcript(&vm, strategy.clone())
            .unwrap();
        for threads in [2, 3, 4, 8] {
            let par_engine = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(threads);
            let (par_report, par_transcript) = par_engine
                .migrate_with_transcript(&vm, strategy.clone())
                .unwrap();
            assert_eq!(
                par_report,
                seq_report,
                "strategy {} threads {threads}",
                strategy.name()
            );
            assert_eq!(
                par_transcript,
                seq_transcript,
                "strategy {} threads {threads}",
                strategy.name()
            );
        }
    }
}

#[test]
fn parallel_gang_migration_matches_sequential() {
    // Gang migrations share the dedup cache across VMs; the parallel
    // scan must hand identical cross-VM back-references out.
    let a = mem(4, 64);
    let mut b = a.snapshot();
    let n = b.page_count().as_u64();
    for i in 0..n / 8 {
        b.write_page(PageIndex::new(i), PageContent::ContentId((1 << 52) | i));
    }
    let strategies = [Strategy::dedup(), Strategy::dedup()];
    let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
        .migrate_gang(&[&a, &b], &strategies)
        .unwrap();
    for threads in [2, 4] {
        let par = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_threads(threads)
            .migrate_gang(&[&a, &b], &strategies)
            .unwrap();
        assert_eq!(par, seq, "threads {threads}");
    }
}

#[test]
fn parallel_scan_handles_images_smaller_than_thread_count() {
    let vm = DigestMemory::with_distinct_content(PageCount::new(3), 9);
    let seq = MigrationEngine::new(LinkSpec::lan_gigabit())
        .migrate(&vm, Strategy::full())
        .unwrap();
    let par = MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_threads(16)
        .migrate(&vm, Strategy::full())
        .unwrap();
    assert_eq!(par, seq);
}

#[test]
#[should_panic(expected = "at least one scan thread")]
fn zero_threads_panics() {
    let _ = MigrationEngine::new(LinkSpec::lan_gigabit()).with_threads(0);
}

// ---- fault injection ----

#[test]
fn clean_faulted_path_is_bit_identical_to_migrate_live() {
    // migrate_live delegates to the faulted path; a *separate* call
    // with AttemptFaults::none() must reproduce it exactly.
    let run = |faulted: bool| {
        let mut guest = Guest::new(mem(8, 70));
        let mut wl = IdleWorkload::new(71, 5_000.0);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
        if faulted {
            match engine
                .migrate_live_faulted(
                    &mut guest,
                    &mut wl,
                    Strategy::full(),
                    &AttemptFaults::none(),
                )
                .unwrap()
            {
                LiveOutcome::Completed(r) => r,
                LiveOutcome::Aborted(_) => panic!("clean attempt aborted"),
            }
        } else {
            engine
                .migrate_live(&mut guest, &mut wl, Strategy::full())
                .unwrap()
        }
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn link_cut_in_round_one_lands_a_strict_prefix() {
    let mut guest = Guest::new(mem(8, 72));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let faults = AttemptFaults {
        cut_after: Some(DropPoint::RamFraction(0.25)),
        ..AttemptFaults::none()
    };
    let outcome = engine
        .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
        .unwrap();
    let aborted = match outcome {
        LiveOutcome::Aborted(a) => a,
        LiveOutcome::Completed(_) => panic!("cut at 25% of RAM must abort"),
    };
    assert_eq!(aborted.cause, FaultCause::LinkFailure);
    let landed = aborted.landed_pages().as_u64();
    let total = guest.page_count().as_u64();
    assert!(landed > 0 && landed < total, "landed {landed}/{total}");
    // Landed pages form the prefix the wire walk reached.
    for (i, d) in aborted.landed.iter().enumerate() {
        assert_eq!(d.is_some(), (i as u64) < landed, "page {i}");
    }
    // The aborted attempt cost real traffic and time, but less than
    // a completed full migration would have.
    let clean = engine
        .migrate_live(
            &mut Guest::new(mem(8, 72)),
            &mut SilentWorkload,
            Strategy::full(),
        )
        .unwrap();
    assert!(aborted.traffic > Bytes::ZERO);
    assert!(aborted.traffic < clean.source_traffic());
    assert!(aborted.elapsed > SimDuration::ZERO);
    assert!(aborted.elapsed < clean.total_time());
}

#[test]
fn landed_digests_match_guest_content() {
    let mut guest = Guest::new(mem(4, 73));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    let faults = AttemptFaults {
        cut_after: Some(DropPoint::RamFraction(0.5)),
        ..AttemptFaults::none()
    };
    let outcome = engine
        .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
        .unwrap();
    let LiveOutcome::Aborted(aborted) = outcome else {
        panic!("expected abort");
    };
    for (i, d) in aborted.landed.iter().enumerate() {
        if let Some(d) = d {
            assert_eq!(*d, guest.page_digest(PageIndex::new(i as u64)));
        }
    }
}

#[test]
fn cut_past_total_traffic_lets_the_migration_complete() {
    let mut guest = Guest::new(mem(4, 74));
    let engine = MigrationEngine::new(LinkSpec::lan_gigabit());
    // RamFraction clamps at 1.0, and framing pushes traffic past
    // RAM — pick an absolute byte cut far beyond any transfer.
    let faults = AttemptFaults {
        cut_after: Some(DropPoint::Bytes(Bytes::from_mib(64))),
        ..AttemptFaults::none()
    };
    let outcome = engine
        .migrate_live_faulted(&mut guest, &mut SilentWorkload, Strategy::full(), &faults)
        .unwrap();
    let LiveOutcome::Completed(with_cut) = outcome else {
        panic!("cut beyond total traffic must not trigger");
    };
    // And the surviving run is bit-identical to the clean one.
    let clean = engine
        .migrate_live(
            &mut Guest::new(mem(4, 74)),
            &mut SilentWorkload,
            Strategy::full(),
        )
        .unwrap();
    assert_eq!(with_cut, clean);
}

#[test]
fn link_degrade_slows_later_rounds_only() {
    let run = |degrade: Option<(f64, u32)>| {
        let mut guest = Guest::new(mem(8, 75));
        let mut wl = IdleWorkload::new(76, 30_000.0);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(4)
            .with_max_downtime(SimDuration::from_millis(1));
        let faults = AttemptFaults {
            degrade,
            ..AttemptFaults::none()
        };
        match engine
            .migrate_live_faulted(&mut guest, &mut wl, Strategy::full(), &faults)
            .unwrap()
        {
            LiveOutcome::Completed(r) => r,
            LiveOutcome::Aborted(_) => panic!("degrade never aborts"),
        }
    };
    let clean = run(None);
    let degraded = run(Some((0.25, 2)));
    // Round 1 ran at full speed either way.
    assert_eq!(degraded.rounds()[0], clean.rounds()[0]);
    // The degraded run took longer overall.
    assert!(degraded.total_time() > clean.total_time());
}

#[test]
fn dirty_spike_increases_resent_traffic() {
    let run = |spike: Option<(f64, u32)>| {
        let mut guest = Guest::new(mem(8, 77));
        let mut wl = IdleWorkload::new(78, 20_000.0);
        let engine = MigrationEngine::new(LinkSpec::lan_gigabit())
            .with_max_rounds(5)
            .with_max_downtime(SimDuration::from_millis(1));
        let faults = AttemptFaults {
            dirty_spike: spike,
            ..AttemptFaults::none()
        };
        match engine
            .migrate_live_faulted(&mut guest, &mut wl, Strategy::full(), &faults)
            .unwrap()
        {
            LiveOutcome::Completed(r) => r,
            LiveOutcome::Aborted(_) => panic!("spike never aborts"),
        }
    };
    let clean = run(None);
    let spiked = run(Some((8.0, 2)));
    assert!(spiked.source_traffic() > clean.source_traffic());
}

#[test]
fn precopy_time_budget_forces_early_handover() {
    let run = |engine: MigrationEngine| {
        let mut guest = Guest::new(mem(8, 79));
        let mut wl = IdleWorkload::new(80, 200_000.0);
        engine
            .migrate_live(&mut guest, &mut wl, Strategy::full())
            .unwrap()
    };
    // A very hot guest and a 1 ms downtime target: without the guard
    // pre-copy burns all 30 rounds without ever converging.
    let unguarded = run(MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_downtime(SimDuration::from_millis(1)));
    let guarded = run(MigrationEngine::new(LinkSpec::lan_gigabit())
        .with_max_downtime(SimDuration::from_millis(1))
        .with_precopy_time_budget(SimDuration::from_millis(500)));
    assert!(guarded.rounds().len() < unguarded.rounds().len());
    assert!(!guarded.converged(), "guard must report non-convergence");
    // Pre-copy stops soon after the budget: the round that crosses
    // the budget is the last one.
    let precopy: SimDuration = guarded.rounds().iter().map(|r| r.duration).sum();
    let before_last: SimDuration = guarded.rounds()[..guarded.rounds().len() - 1]
        .iter()
        .map(|r| r.duration)
        .sum();
    assert!(before_last < SimDuration::from_millis(500), "{before_last}");
    assert!(precopy >= SimDuration::from_millis(500) || guarded.rounds().len() == 30);
}

#[test]
fn converged_run_reports_convergence() {
    let mut guest = Guest::new(mem(4, 81));
    let r = MigrationEngine::new(LinkSpec::lan_gigabit())
        .migrate_live(&mut guest, &mut SilentWorkload, Strategy::full())
        .unwrap();
    assert!(r.converged());
    assert_eq!(r.outcome(), vecycle_core::MigrationOutcome::Completed);
}
