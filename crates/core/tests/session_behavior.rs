//! Behavioral tests of the session layer: checkpoint recycling across a
//! cluster, schedules, and fault-injected retry/resume/degradation.

use vecycle_core::session::{
    RecyclePolicy, ScheduleSummary, SessionEvent, VeCycleSession, VmInstance,
};
use vecycle_core::MigrationOutcome;
use vecycle_faults::{DropPoint, FaultKind, FaultPlan, FaultRates, RetryPolicy};
use vecycle_host::{Cluster, MigrationSchedule};
use vecycle_mem::{workload::SilentWorkload, DigestMemory, Guest};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, Error, HostId, PageCount, SimDuration, SimTime, VmId};

fn session() -> VeCycleSession {
    VeCycleSession::new(Cluster::homogeneous(2, LinkSpec::lan_gigabit()))
}

fn instance() -> VmInstance<DigestMemory> {
    let mem = DigestMemory::with_uniform_content(Bytes::from_mib(4), 1).unwrap();
    VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0))
}

#[test]
fn first_migration_is_dedup_second_recycles() {
    let s = session();
    let mut vm = instance();
    let r1 = s
        .migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    assert_eq!(r1.strategy().to_string(), "dedup");
    assert_eq!(vm.location(), HostId::new(1));
    // Host 0 now holds a checkpoint; migrating back recycles it.
    let r2 = s
        .migrate(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(r2.strategy().to_string(), "vecycle+dedup");
    assert!(r2.source_traffic().as_f64() < r1.source_traffic().as_f64() / 10.0);
}

#[test]
fn baseline_policy_never_recycles() {
    let s = session().with_policy(RecyclePolicy::Baseline);
    let mut vm = instance();
    for hop in [1u32, 0, 1] {
        let r = s
            .migrate(
                &mut vm,
                HostId::new(hop),
                SimTime::EPOCH,
                &mut SilentWorkload,
            )
            .unwrap();
        assert_eq!(r.strategy().to_string(), "full");
    }
}

#[test]
fn checkpoints_accumulate_at_vacated_hosts() {
    let s = session();
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    assert_eq!(s.cluster().hosts()[0].store().vm_count(), 1);
    assert_eq!(s.cluster().hosts()[1].store().vm_count(), 0);
}

#[test]
fn unknown_destination_is_an_error() {
    let s = session();
    let mut vm = instance();
    let err = s
        .migrate(&mut vm, HostId::new(9), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap_err();
    assert!(matches!(err, Error::NotFound { .. }));
    assert_eq!(vm.location(), HostId::new(0));
}

#[test]
fn ping_pong_schedule_runs_end_to_end() {
    let s = session();
    let mut vm = instance();
    let schedule = MigrationSchedule::ping_pong(
        vm.id(),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(2),
        4,
    );
    let reports = s
        .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
        .unwrap();
    assert_eq!(reports.len(), 4);
    // Leg 1 finds no checkpoint; every later leg returns to a host
    // that stored one when the VM left it.
    assert_eq!(reports[0].strategy().to_string(), "dedup");
    assert_eq!(reports[1].strategy().to_string(), "vecycle+dedup");
    assert_eq!(reports[2].strategy().to_string(), "vecycle+dedup");
    assert_eq!(reports[3].strategy().to_string(), "vecycle+dedup");
    assert_eq!(vm.location(), HostId::new(0));
}

#[test]
fn inconsistent_schedule_is_rejected() {
    let s = session();
    let mut vm = instance();
    let schedule = MigrationSchedule::ping_pong(
        vm.id(),
        HostId::new(1), // VM is actually at host 0
        HostId::new(0),
        SimTime::EPOCH,
        SimDuration::from_hours(1),
        1,
    );
    assert!(s
        .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
        .is_err());
}

#[test]
fn resized_vm_does_not_recycle_stale_checkpoint() {
    let s = session();
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    // Replace with a larger VM under the same ID.
    let bigger = DigestMemory::with_uniform_content(Bytes::from_mib(8), 2).unwrap();
    let mut vm2 = VmInstance::new(VmId::new(0), Guest::new(bigger), HostId::new(1));
    let r = s
        .migrate(
            &mut vm2,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "dedup");
}

#[test]
fn schedule_summary_aggregates() {
    let s = session();
    let mut vm = instance();
    let schedule = MigrationSchedule::ping_pong(
        vm.id(),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        5,
    );
    let reports = s
        .run_schedule(&mut vm, &schedule, &mut SilentWorkload)
        .unwrap();
    let summary = ScheduleSummary::of(&reports);
    assert_eq!(summary.migrations, 5);
    assert_eq!(summary.recycled, 4); // first leg has no checkpoint
    let by_hand: vecycle_types::Bytes = reports.iter().map(|r| r.source_traffic()).sum();
    assert_eq!(summary.total_traffic, by_hand);
    assert!(summary.mean_time > SimDuration::ZERO);
    assert!(summary.to_string().contains("5 migrations (4 recycled)"));
}

#[test]
fn adaptive_policy_recycles_only_similar_guests() {
    use vecycle_mem::PageContent;
    use vecycle_types::PageIndex;

    let s = session().with_policy(RecyclePolicy::Adaptive {
        min_similarity: 0.5,
    });
    // Warm up: leave a checkpoint at host 0.
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();

    // Barely diverged guest: estimate high, recycles.
    let r = s
        .migrate(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "vecycle+dedup");

    // Rewrite nearly everything: estimate collapses, falls back.
    s.migrate(
        &mut vm,
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(2),
        &mut SilentWorkload,
    )
    .unwrap();
    let n = vm.guest().page_count().as_u64();
    for i in 0..n {
        vm.guest_mut()
            .write_page(PageIndex::new(i), PageContent::ContentId((1 << 58) | i));
    }
    let r = s
        .migrate(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(3),
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "dedup");
}

#[test]
fn sizes_match_checkpoint_pages() {
    let s = session();
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    let cp = s.cluster().hosts()[0].store().latest(VmId::new(0)).unwrap();
    assert_eq!(cp.page_count(), PageCount::new(1024));
}

// --- fault-injection and recovery ---

/// Warms host 0 with a checkpoint by hopping the VM 0 → 1.
fn warmed() -> (VeCycleSession, VmInstance<DigestMemory>) {
    let s = session();
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    (s, vm)
}

#[test]
fn clean_faulted_migrate_matches_migrate() {
    let (s, mut vm_a) = warmed();
    let (s2, mut vm_b) = warmed();
    let clean = s
        .migrate(
            &mut vm_a,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
        )
        .unwrap();
    let mut events = Vec::new();
    let faulted = s2
        .migrate_with_faults(
            &mut vm_b,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &FaultPlan::none(),
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(clean, faulted);
    assert!(events.is_empty());
    assert_eq!(clean.outcome(), MigrationOutcome::Completed);
}

#[test]
fn corrupt_checkpoint_falls_back_to_dedup() {
    let (s, mut vm) = warmed();
    let plan = FaultPlan::none().inject(0, FaultKind::CheckpointCorrupt);
    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(r.strategy().to_string(), "dedup");
    assert_eq!(
        r.outcome(),
        MigrationOutcome::FellBackToFull {
            cause: vecycle_faults::FaultCause::CorruptCheckpoint
        }
    );
    assert!(matches!(
        events[0],
        SessionEvent::CorruptCheckpointDiscarded { .. }
    ));
    // The bad checkpoint is gone; the VM still arrived.
    assert_eq!(s.cluster().hosts()[0].store().vm_count(), 0);
    assert_eq!(vm.location(), HostId::new(0));
}

#[test]
fn corrupt_fault_without_checkpoint_is_a_plain_first_visit() {
    let s = session();
    let mut vm = instance();
    let plan = FaultPlan::none().inject(0, FaultKind::CheckpointCorrupt);
    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(1),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap();
    // Nothing existed to corrupt: no fallback, no event.
    assert_eq!(r.outcome(), MigrationOutcome::Completed);
    assert!(events.is_empty());
}

#[test]
fn link_drop_retries_and_resumes_from_landed_pages() {
    let (s, mut vm) = warmed();
    // The return leg recycles a checkpoint, so its forward traffic is
    // mostly 28-byte checksums — the cut must be far below RAM size
    // to strike mid-transfer.
    let plan = FaultPlan::none().inject(
        0,
        FaultKind::LinkDrop {
            after: DropPoint::Bytes(Bytes::from_kib(8)),
            attempts: 1,
        },
    );
    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(
        r.outcome(),
        MigrationOutcome::CompletedAfterRetries { attempts: 2 }
    );
    assert_eq!(vm.location(), HostId::new(0));
    assert!(r.wasted_traffic() > Bytes::ZERO);
    assert!(r.wasted_time() > SimDuration::ZERO);
    assert!(r.total_traffic_with_retries() > r.source_traffic());
    assert_eq!(events.len(), 3, "{events:?}");
    assert!(matches!(events[0], SessionEvent::AttemptAborted { .. }));
    assert!(matches!(events[1], SessionEvent::RetryScheduled { .. }));
    assert!(matches!(events[2], SessionEvent::ResumedFromPartial { .. }));
}

#[test]
fn resumed_retry_resends_less_than_from_scratch() {
    // Two identical worlds, differing only in whether the retry
    // recycles the aborted attempt's landed pages.
    let drop_fault = FaultKind::LinkDrop {
        after: DropPoint::RamFraction(0.5),
        attempts: 1,
    };
    let run = |retry: RetryPolicy| {
        let s = session().with_retry_policy(retry);
        let mut vm = instance();
        let plan = FaultPlan::none().inject(0, drop_fault);
        let mut events = Vec::new();
        s.migrate_with_faults(
            &mut vm,
            HostId::new(1),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap()
    };
    let resumed = run(RetryPolicy::default());
    let scratch = run(RetryPolicy::from_scratch());
    assert_eq!(
        resumed.outcome(),
        MigrationOutcome::CompletedAfterRetries { attempts: 2 }
    );
    // The cut lands ~half the pages; the resumed attempt replaces
    // those with checksum messages, so it re-sends well under what a
    // from-scratch retry sends.
    assert!(
        resumed.source_traffic().as_f64() < scratch.source_traffic().as_f64() * 0.75,
        "resumed {} vs scratch {}",
        resumed.source_traffic(),
        scratch.source_traffic()
    );
}

#[test]
fn exhausted_retries_leave_the_vm_at_the_source() {
    let s = session().with_retry_policy(RetryPolicy::default().with_max_attempts(2));
    let mut vm = instance();
    let plan = FaultPlan::none().inject(
        0,
        FaultKind::LinkDrop {
            after: DropPoint::RamFraction(0.25),
            attempts: u32::MAX,
        },
    );
    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(1),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap();
    assert!(matches!(r.outcome(), MigrationOutcome::Failed { .. }));
    assert!(!r.outcome().is_success());
    assert_eq!(vm.location(), HostId::new(0), "VM must stay at the source");
    assert_eq!(r.source_traffic(), Bytes::ZERO);
    assert!(r.wasted_traffic() > Bytes::ZERO);
    // No checkpoint is written for a migration that never happened.
    assert_eq!(s.cluster().hosts()[0].store().vm_count(), 0);
    assert!(matches!(
        events.last().unwrap(),
        SessionEvent::MigrationFailed { .. }
    ));
}

#[test]
fn crash_during_save_loses_only_the_new_checkpoint() {
    let (s, mut vm) = warmed();
    // Host 0 holds the checkpoint from the warm-up hop. Migrating
    // back with a crash-on-save fault means host 1 (the vacated
    // source) never stores the new one.
    let plan = FaultPlan::none().inject(0, FaultKind::CrashDuringSave);
    let mut events = Vec::new();
    let r = s
        .migrate_with_faults(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH,
            &mut SilentWorkload,
            &plan,
            0,
            &mut events,
        )
        .unwrap();
    assert_eq!(r.outcome(), MigrationOutcome::Completed);
    assert_eq!(vm.location(), HostId::new(0));
    assert_eq!(s.cluster().hosts()[1].store().vm_count(), 0);
    // The old checkpoint at host 0 was consumed-but-kept: still there.
    assert_eq!(s.cluster().hosts()[0].store().vm_count(), 1);
    assert!(matches!(events[0], SessionEvent::CheckpointSaveLost { .. }));
}

#[test]
fn disk_store_write_through_survives_memory_store_loss() {
    let dir = std::env::temp_dir().join("vecycle-session-diskstore-test");
    let _ = std::fs::remove_dir_all(&dir);
    let cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
        .attach_disk_stores(&dir)
        .unwrap();
    let s = VeCycleSession::new(cluster);
    let mut vm = instance();
    s.migrate(&mut vm, HostId::new(1), SimTime::EPOCH, &mut SilentWorkload)
        .unwrap();
    // Simulate a host restart: the in-memory store evaporates, the
    // durable one does not.
    assert_eq!(s.cluster().hosts()[0].store().remove(vm.id()), 1);
    let r = s
        .migrate(
            &mut vm,
            HostId::new(0),
            SimTime::EPOCH + SimDuration::from_hours(1),
            &mut SilentWorkload,
        )
        .unwrap();
    assert_eq!(
        r.strategy().to_string(),
        "vecycle+dedup",
        "checkpoint must be recovered from the durable store"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn faulted_schedule_survives_a_permanent_failure() {
    let s = session().with_retry_policy(RetryPolicy::default().with_max_attempts(2));
    let mut vm = instance();
    let schedule = MigrationSchedule::ping_pong(
        vm.id(),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        2,
    );
    // Leg 0 fails on every attempt; leg 1 (1 → 0) then finds the VM
    // already at host 0 and is skipped.
    let plan = FaultPlan::none().inject(
        0,
        FaultKind::LinkDrop {
            after: DropPoint::RamFraction(0.1),
            attempts: u32::MAX,
        },
    );
    let run = s
        .run_schedule_with_faults(&mut vm, &schedule, &mut SilentWorkload, &plan)
        .unwrap();
    assert_eq!(run.reports.len(), 1, "the return leg is skipped");
    assert!(matches!(
        run.reports[0].outcome(),
        MigrationOutcome::Failed { .. }
    ));
    assert_eq!(vm.location(), HostId::new(0));
    let summary = ScheduleSummary::of(&run.reports);
    assert_eq!(summary.failed, 1);
    assert!(summary.to_string().contains("1 failed"));
}

#[test]
fn seeded_fault_schedule_completes_without_errors() {
    let s = session();
    let mut vm = instance();
    let schedule = MigrationSchedule::ping_pong(
        vm.id(),
        HostId::new(0),
        HostId::new(1),
        SimTime::EPOCH + SimDuration::from_hours(1),
        SimDuration::from_hours(1),
        8,
    );
    let plan = FaultPlan::seeded(7, &FaultRates::uniform(0.5), schedule.len());
    assert!(!plan.is_empty(), "seed 7 at 50% must fault something");
    let run = s
        .run_schedule_with_faults(&mut vm, &schedule, &mut SilentWorkload, &plan)
        .unwrap();
    assert!(!run.reports.is_empty());
    // Every report carries a definite outcome and no panic occurred.
    for r in &run.reports {
        let _ = r.outcome().to_string();
    }
    for e in &run.events {
        let _ = e.to_string();
    }
}

#[test]
fn clean_faulted_schedule_matches_plain_schedule() {
    let make_schedule = |vm: VmId| {
        MigrationSchedule::ping_pong(
            vm,
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH + SimDuration::from_hours(1),
            SimDuration::from_hours(1),
            4,
        )
    };
    let s1 = session();
    let mut vm1 = instance();
    let schedule1 = make_schedule(vm1.id());
    let plain = s1
        .run_schedule(&mut vm1, &schedule1, &mut SilentWorkload)
        .unwrap();
    let s2 = session();
    let mut vm2 = instance();
    let schedule2 = make_schedule(vm2.id());
    let faulted = s2
        .run_schedule_with_faults(
            &mut vm2,
            &schedule2,
            &mut SilentWorkload,
            &FaultPlan::none(),
        )
        .unwrap();
    assert_eq!(plain, faulted.reports);
    assert!(faulted.events.is_empty());
}

#[test]
fn session_events_display_as_prose() {
    let e = SessionEvent::AttemptAborted {
        vm: VmId::new(3),
        attempt: 1,
        cause: vecycle_faults::FaultCause::LinkFailure,
        landed: PageCount::new(100),
    };
    let text = e.to_string();
    assert!(text.contains("attempt 1"), "{text}");
    assert!(text.contains("link failure"), "{text}");
}
