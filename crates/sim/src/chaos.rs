//! Seeded chaos scenarios for the soak harness.
//!
//! A [`ChaosScenario`] is a deterministic, *types-only* description of a
//! long hostile run: per leg, which host the VM moves to, how long the
//! guest ages first, and which misfortunes strike — destination crashes,
//! disk-pressure spikes, checkpoint rot, mid-transfer link drops, netem
//! loss. The description deliberately knows nothing about fault plans,
//! clusters, or stores; the soak harness (`vecycle-bench`) translates
//! each [`ChaosAction`] into the concrete machinery. Keeping the
//! generator here, beneath every other crate, means the same scenario
//! bytes drive the CLI, the bench binary, and the test suite.
//!
//! Determinism contract: generation draws a *fixed* number of random
//! values per leg regardless of which actions fire, so scenarios with
//! the same seed share a per-leg prefix even when their lengths differ,
//! and any rate set to zero never perturbs the others.
//!
//! # Examples
//!
//! ```
//! use vecycle_sim::chaos::{ChaosConfig, ChaosScenario};
//!
//! let cfg = ChaosConfig::parse("seed=7,legs=50,crash=0.1,pressure=0.2").unwrap();
//! let a = ChaosScenario::generate(&cfg);
//! let b = ChaosScenario::generate(&cfg);
//! assert_eq!(a, b);
//! assert_eq!(a.legs.len(), 50);
//! ```

use vecycle_types::{Error, SimDuration};

/// Per-action probabilities, each in `[0, 1]`, applied independently per
/// leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosRates {
    /// Probability the destination host crashes mid-transfer.
    pub crash: f64,
    /// Probability a disk-pressure spike squeezes the destination's
    /// checkpoint quota before the leg.
    pub pressure: f64,
    /// Probability the destination's stored checkpoint is corrupt.
    pub corrupt: f64,
    /// Probability the link drops mid-transfer.
    pub drop: f64,
    /// Probability the leg runs under netem-style random loss.
    pub loss: f64,
}

impl Default for ChaosRates {
    fn default() -> Self {
        ChaosRates {
            crash: 0.0,
            pressure: 0.0,
            corrupt: 0.0,
            drop: 0.0,
            loss: 0.0,
        }
    }
}

/// Full configuration of a chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the scenario generator.
    pub seed: u64,
    /// Number of migration legs.
    pub legs: usize,
    /// Hosts in the cluster (the VM random-walks across them).
    pub hosts: usize,
    /// Per-action probabilities.
    pub rates: ChaosRates,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x7ec,
            legs: 200,
            hosts: 3,
            rates: ChaosRates::default(),
        }
    }
}

impl ChaosConfig {
    /// Parses a compact `key=value` spec, comma-separated, e.g.
    /// `seed=42,legs=250,crash=0.1,pressure=0.3,corrupt=0.05,loss=0.02`.
    ///
    /// Unknown keys are rejected so typos fail loudly, and so are
    /// repeated keys — a spec like `crash=0.1,crash=0.9` is far more
    /// likely a copy-paste slip than an intentional override, and
    /// silently letting the last value win would make incident logs
    /// lie about the run's configuration. Omitted keys keep their
    /// [`ChaosConfig::default`] value (all rates default to 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on malformed pairs, unknown or
    /// duplicate keys, unparsable numbers, rates outside `[0, 1]`, or a
    /// zero leg/host count.
    pub fn parse(spec: &str) -> Result<ChaosConfig, Error> {
        let mut cfg = ChaosConfig::default();
        let bad = |reason: String| Error::InvalidConfig { reason };
        let mut seen: Vec<&str> = Vec::new();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| bad(format!("chaos spec `{pair}` is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            if seen.contains(&key) {
                return Err(bad(format!("chaos key `{key}` given twice")));
            }
            let rate = |field: &mut f64| -> Result<(), Error> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| bad(format!("chaos rate `{key}={value}` is not a number")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad(format!("chaos rate `{key}={value}` outside [0, 1]")));
                }
                *field = p;
                Ok(())
            };
            match key {
                "seed" => {
                    cfg.seed = value
                        .parse()
                        .map_err(|_| bad(format!("chaos seed `{value}` is not a u64")))?;
                }
                "legs" => {
                    cfg.legs = value
                        .parse()
                        .map_err(|_| bad(format!("chaos legs `{value}` is not a count")))?;
                }
                "hosts" => {
                    cfg.hosts = value
                        .parse()
                        .map_err(|_| bad(format!("chaos hosts `{value}` is not a count")))?;
                }
                "crash" => rate(&mut cfg.rates.crash)?,
                "pressure" => rate(&mut cfg.rates.pressure)?,
                "corrupt" => rate(&mut cfg.rates.corrupt)?,
                "drop" => rate(&mut cfg.rates.drop)?,
                "loss" => rate(&mut cfg.rates.loss)?,
                _ => return Err(bad(format!("unknown chaos key `{key}`"))),
            }
            seen.push(key);
        }
        if cfg.legs == 0 {
            return Err(bad("chaos legs must be > 0".into()));
        }
        if cfg.hosts < 2 {
            return Err(bad("chaos needs at least 2 hosts".into()));
        }
        Ok(cfg)
    }
}

/// One misfortune striking a migration leg. Parameters are abstract
/// (fractions, probabilities) so the harness can scale them to the
/// actual VM and quota sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosAction {
    /// The destination host dies after this fraction of the guest's RAM
    /// has landed, losing its in-memory checkpoint catalog.
    HostCrash {
        /// Fraction of RAM transferred before the crash, in `(0, 1)`.
        ram_fraction: f64,
    },
    /// Background churn consumes part of the destination's checkpoint
    /// quota before the leg: the harness saves filler checkpoints worth
    /// `quota_fraction` of the budget, forcing the eviction policy to
    /// choose victims.
    DiskPressure {
        /// Fraction of the destination's quota the filler occupies.
        quota_fraction: f64,
    },
    /// The checkpoint the destination would recycle is corrupt.
    CorruptCheckpoint,
    /// The link drops after this fraction of the guest's RAM is sent.
    LinkDrop {
        /// Fraction of RAM transferred before the drop, in `(0, 1)`.
        ram_fraction: f64,
    },
    /// The leg runs under netem-style random packet loss; the harness
    /// converts the probability to an effective-throughput factor via
    /// the TCP loss model.
    LinkLoss {
        /// Random loss probability, in `(0, 1)`.
        probability: f64,
    },
}

impl ChaosAction {
    /// Stable snake_case label (incident logs, metrics).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosAction::HostCrash { .. } => "host_crash",
            ChaosAction::DiskPressure { .. } => "disk_pressure",
            ChaosAction::CorruptCheckpoint => "corrupt_checkpoint",
            ChaosAction::LinkDrop { .. } => "link_drop",
            ChaosAction::LinkLoss { .. } => "link_loss",
        }
    }
}

/// One leg of a chaos scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosLeg {
    /// Destination host index in `[0, hosts)`; generation guarantees it
    /// differs from the previous leg's destination (the walk always
    /// moves).
    pub dest: usize,
    /// Guest aging time since the previous leg.
    pub gap: SimDuration,
    /// Misfortunes striking this leg, in a fixed draw order.
    pub actions: Vec<ChaosAction>,
}

/// A fully generated chaos run: the random walk plus every planned
/// misfortune.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// The configuration that produced this scenario.
    pub config: ChaosConfig,
    /// Per-leg plan, in schedule order.
    pub legs: Vec<ChaosLeg>,
}

impl ChaosScenario {
    /// Generates the scenario for `config`, deterministically.
    ///
    /// The VM starts at host index 0; each leg walks to a uniformly
    /// chosen *different* host. Gaps are uniform in 10 minutes … 2 hours
    /// (long enough for guests to age, short enough that 200-leg soaks
    /// span simulated days, not years).
    pub fn generate(config: &ChaosConfig) -> ChaosScenario {
        let mut rng = SplitXorshift::new(config.seed ^ 0xc4a0_5eed_0dd5_ee17);
        let mut legs = Vec::with_capacity(config.legs);
        let mut at = 0usize;
        for _ in 0..config.legs {
            // Fixed 12 draws per leg, fired or not (see module docs).
            let dest_draw = rng.next_f64();
            let gap_draw = rng.next_f64();
            // Cut fractions are deliberately small: recycled transfers
            // move only dirtied pages, a tiny slice of RAM, and a cut
            // point the transfer never reaches is a fault that never
            // strikes.
            let crash_p = rng.next_f64();
            let crash_frac = 0.005 + 0.1 * rng.next_f64();
            let pressure_p = rng.next_f64();
            let pressure_frac = 0.3 + 0.6 * rng.next_f64();
            let corrupt_p = rng.next_f64();
            let drop_p = rng.next_f64();
            let drop_frac = 0.005 + 0.15 * rng.next_f64();
            let loss_p = rng.next_f64();
            let loss_prob = 0.001 + 0.019 * rng.next_f64();
            let _reserved = rng.next_f64();

            // Walk to one of the other hosts: index into the list with
            // the current host removed.
            let step = 1 + (dest_draw * (config.hosts - 1) as f64) as usize;
            let dest = (at + step.min(config.hosts - 1)) % config.hosts;
            at = dest;
            let gap = SimDuration::from_secs(600 + (gap_draw * 6600.0) as u64);

            let mut actions = Vec::new();
            if crash_p < config.rates.crash {
                actions.push(ChaosAction::HostCrash {
                    ram_fraction: crash_frac,
                });
            }
            if pressure_p < config.rates.pressure {
                actions.push(ChaosAction::DiskPressure {
                    quota_fraction: pressure_frac,
                });
            }
            if corrupt_p < config.rates.corrupt {
                actions.push(ChaosAction::CorruptCheckpoint);
            }
            if drop_p < config.rates.drop {
                actions.push(ChaosAction::LinkDrop {
                    ram_fraction: drop_frac,
                });
            }
            if loss_p < config.rates.loss {
                actions.push(ChaosAction::LinkLoss {
                    probability: loss_prob,
                });
            }
            legs.push(ChaosLeg { dest, gap, actions });
        }
        ChaosScenario {
            config: *config,
            legs,
        }
    }

    /// Number of legs with at least one action armed.
    pub fn armed_legs(&self) -> usize {
        self.legs.iter().filter(|l| !l.actions.is_empty()).count()
    }

    /// Total actions across all legs.
    pub fn total_actions(&self) -> usize {
        self.legs.iter().map(|l| l.actions.len()).sum()
    }
}

/// Self-contained deterministic generator: splitmix64 seeding feeding
/// xorshift64 — the same construction the fault-plan and schedule
/// generators use, re-implemented here because this crate sits beneath
/// them in the dependency graph.
struct SplitXorshift {
    state: u64,
}

impl SplitXorshift {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SplitXorshift { state: z | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hostile() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            legs: 100,
            hosts: 4,
            rates: ChaosRates {
                crash: 0.2,
                pressure: 0.3,
                corrupt: 0.1,
                drop: 0.2,
                loss: 0.1,
            },
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = hostile();
        assert_eq!(ChaosScenario::generate(&cfg), ChaosScenario::generate(&cfg));
    }

    #[test]
    fn longer_runs_share_the_prefix() {
        let short = ChaosScenario::generate(&hostile());
        let long = ChaosScenario::generate(&ChaosConfig {
            legs: 250,
            ..hostile()
        });
        assert_eq!(&long.legs[..100], &short.legs[..]);
    }

    #[test]
    fn zero_rates_arm_nothing_but_keep_the_walk() {
        let calm = ChaosScenario::generate(&ChaosConfig {
            rates: ChaosRates::default(),
            ..hostile()
        });
        assert_eq!(calm.armed_legs(), 0);
        let wild = ChaosScenario::generate(&hostile());
        // Fixed draws per leg: the walk itself is identical either way.
        for (c, w) in calm.legs.iter().zip(&wild.legs) {
            assert_eq!(c.dest, w.dest);
            assert_eq!(c.gap, w.gap);
        }
        assert!(wild.armed_legs() > 0);
    }

    #[test]
    fn the_walk_always_moves() {
        let s = ChaosScenario::generate(&hostile());
        let mut at = 0usize;
        for leg in &s.legs {
            assert_ne!(leg.dest, at, "leg destination equals current host");
            assert!(leg.dest < 4);
            at = leg.dest;
        }
    }

    #[test]
    fn hostile_rates_fire_roughly_proportionally() {
        let s = ChaosScenario::generate(&ChaosConfig {
            legs: 1000,
            ..hostile()
        });
        let crashes = s
            .legs
            .iter()
            .flat_map(|l| &l.actions)
            .filter(|a| matches!(a, ChaosAction::HostCrash { .. }))
            .count();
        // 20% rate over 1000 legs: expect ~200, allow wide slack.
        assert!((100..=300).contains(&crashes), "crashes = {crashes}");
    }

    #[test]
    fn parse_round_trips_keys() {
        let cfg = ChaosConfig::parse("seed=9, legs=40, hosts=5, crash=0.25, pressure=1, loss=0.5")
            .unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.legs, 40);
        assert_eq!(cfg.hosts, 5);
        assert_eq!(cfg.rates.crash, 0.25);
        assert_eq!(cfg.rates.pressure, 1.0);
        assert_eq!(cfg.rates.loss, 0.5);
        assert_eq!(cfg.rates.corrupt, 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("crash").is_err());
        assert!(ChaosConfig::parse("crash=1.5").is_err());
        assert!(ChaosConfig::parse("seed=abc").is_err());
        assert!(ChaosConfig::parse("legs=0").is_err());
        assert!(ChaosConfig::parse("hosts=1").is_err());
    }

    #[test]
    fn empty_spec_is_the_default() {
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(ChaosConfig::parse("crash=0.1,crash=0.9").is_err());
        assert!(ChaosConfig::parse("seed=1,legs=10,seed=2").is_err());
        // Whitespace around a repeated key still counts as the same key.
        assert!(ChaosConfig::parse("loss=0.1, loss =0.2").is_err());
    }

    /// The CLI prints these errors verbatim into incident logs; pin the
    /// exact strings so operator tooling that greps them stays stable.
    #[test]
    fn error_strings_are_pinned() {
        let msg = |spec: &str| ChaosConfig::parse(spec).unwrap_err().to_string();
        assert_eq!(
            msg("crash=0.1,crash=0.9"),
            "invalid configuration: chaos key `crash` given twice"
        );
        assert_eq!(
            msg("crash=1.5"),
            "invalid configuration: chaos rate `crash=1.5` outside [0, 1]"
        );
        assert_eq!(
            msg("crash=abc"),
            "invalid configuration: chaos rate `crash=abc` is not a number"
        );
        assert_eq!(
            msg("meteor=1"),
            "invalid configuration: unknown chaos key `meteor`"
        );
        assert_eq!(
            msg("crash"),
            "invalid configuration: chaos spec `crash` is not key=value"
        );
        assert_eq!(
            msg("seed=zz"),
            "invalid configuration: chaos seed `zz` is not a u64"
        );
        assert_eq!(
            msg("legs=0"),
            "invalid configuration: chaos legs must be > 0"
        );
        assert_eq!(
            msg("hosts=1"),
            "invalid configuration: chaos needs at least 2 hosts"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ChaosAction::DiskPressure {
                quota_fraction: 0.5
            }
            .label(),
            "disk_pressure"
        );
        assert_eq!(ChaosAction::CorruptCheckpoint.label(), "corrupt_checkpoint");
    }
}
