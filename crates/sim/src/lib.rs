//! A minimal deterministic discrete-event simulator.
//!
//! Multi-day scenarios — the VDI consolidation schedule of §4.6, ping-pong
//! migration patterns — are driven by this engine: events are scheduled at
//! simulated instants and handlers run in timestamp order. Within a single
//! migration, time is computed analytically by the network/CPU models, so
//! the event granularity here is "one migration", not "one packet".
//!
//! Determinism: ties at the same timestamp are broken by insertion order
//! (FIFO), so a given scenario always replays identically.
//!
//! # Examples
//!
//! ```
//! use vecycle_sim::Simulator;
//! use vecycle_types::{SimDuration, SimTime};
//!
//! let mut sim: Simulator<&str> = Simulator::new();
//! sim.schedule_at(SimTime::EPOCH + SimDuration::from_hours(9), "morning");
//! sim.schedule_at(SimTime::EPOCH + SimDuration::from_hours(17), "evening");
//!
//! let mut order = Vec::new();
//! while let Some(ev) = sim.pop() {
//!     order.push((ev.time, ev.payload));
//! }
//! assert_eq!(order[0].1, "morning");
//! assert_eq!(order[1].1, "evening");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vecycle_types::{SimDuration, SimTime};

/// An event popped from the simulator: when it fired and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// The simulated instant the event fires.
    pub time: SimTime,
    /// The caller-defined payload.
    pub payload: T,
}

#[derive(Debug)]
struct QueueEntry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for QueueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for QueueEntry<T> {}

impl<T> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue with a simulated clock.
///
/// The clock never moves backwards: popping an event advances `now` to the
/// event's timestamp, and scheduling in the past is rejected.
#[derive(Debug)]
pub struct Simulator<T> {
    queue: BinaryHeap<QueueEntry<T>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<T> Simulator<T> {
    /// Creates an empty simulator at the epoch.
    pub fn new() -> Self {
        Simulator {
            queue: BinaryHeap::new(),
            now: SimTime::EPOCH,
            next_seq: 0,
            processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulated time; scheduling
    /// into the past would silently reorder history.
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(QueueEntry { time, seq, payload });
    }

    /// Schedules `payload` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: T) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let entry = self.queue.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.processed += 1;
        Some(Event {
            time: entry.time,
            payload: entry.payload,
        })
    }

    /// Runs the simulation to completion, calling `handler` for each event.
    ///
    /// The handler may schedule further events through the `&mut Simulator`
    /// it receives. Returns the number of events processed by this call.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<T>, Event<T>),
    {
        let before = self.processed;
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
        self.processed - before
    }

    /// Runs until the clock passes `deadline`, leaving later events queued.
    ///
    /// Events stamped exactly at `deadline` are processed. Returns the
    /// number of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Simulator<T>, Event<T>),
    {
        let before = self.processed;
        while let Some(entry) = self.queue.peek() {
            if entry.time > deadline {
                break;
            }
            let ev = self.pop().expect("peeked entry exists");
            handler(self, ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - before
    }
}

impl<T> Default for Simulator<T> {
    fn default() -> Self {
        Simulator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(hours: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_at(at(5), "c");
        sim.schedule_at(at(1), "a");
        sim.schedule_at(at(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(at(2), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| sim.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut sim = Simulator::new();
        sim.schedule_at(at(2), ());
        assert_eq!(sim.now(), SimTime::EPOCH);
        sim.pop();
        assert_eq!(sim.now(), at(2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(at(2), ());
        sim.pop();
        sim.schedule_at(at(1), ());
    }

    #[test]
    fn handlers_can_schedule_cascades() {
        let mut sim = Simulator::new();
        sim.schedule_at(at(1), 3u32);
        let mut seen = Vec::new();
        sim.run(|sim, ev| {
            seen.push(ev.payload);
            if ev.payload > 0 {
                sim.schedule_after(SimDuration::from_hours(1), ev.payload - 1);
            }
        });
        assert_eq!(seen, vec![3, 2, 1, 0]);
        assert_eq!(sim.now(), at(4));
        assert_eq!(sim.processed(), 4);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new();
        for h in 1..=10 {
            sim.schedule_at(at(h), h);
        }
        let mut seen = Vec::new();
        let n = sim.run_until(at(5), |_, ev| seen.push(ev.payload));
        assert_eq!(n, 5);
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert_eq!(sim.pending(), 5);
        assert_eq!(sim.now(), at(5));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.run_until(at(7), |_, _| {});
        assert_eq!(sim.now(), at(7));
        assert!(sim.is_idle());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut sim = Simulator::new();
        sim.schedule_at(at(3), "first");
        sim.pop();
        sim.schedule_after(SimDuration::from_hours(2), "second");
        let ev = sim.pop().unwrap();
        assert_eq!(ev.time, at(5));
    }
}
