//! Property tests: the simulator is a stable priority queue.

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_sim::Simulator;
use vecycle_types::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events pop in timestamp order; ties pop in insertion order.
    #[test]
    fn pop_order_is_stable_sort(times in vec(0u64..500, 1..200)) {
        let mut sim = Simulator::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::EPOCH + SimDuration::from_secs(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut popped = Vec::new();
        while let Some(ev) = sim.pop() {
            popped.push((ev.time.since_epoch().as_nanos() / 1_000_000_000, ev.payload));
        }
        prop_assert_eq!(popped, expected);
    }

    /// The clock is monotone under any interleaving of schedule/pop.
    #[test]
    fn clock_is_monotone(ops in vec((any::<bool>(), 0u64..100), 1..100)) {
        let mut sim = Simulator::new();
        let mut last = SimTime::EPOCH;
        for (do_pop, delay) in ops {
            if do_pop {
                if let Some(ev) = sim.pop() {
                    prop_assert!(ev.time >= last);
                    last = ev.time;
                }
            } else {
                sim.schedule_after(SimDuration::from_secs(delay), ());
            }
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
    }

    /// run_until processes exactly the events at or before the deadline.
    #[test]
    fn run_until_partitions_events(times in vec(0u64..200, 0..100), deadline in 0u64..200) {
        let mut sim = Simulator::new();
        for &t in &times {
            sim.schedule_at(SimTime::EPOCH + SimDuration::from_secs(t), t);
        }
        let cutoff = SimTime::EPOCH + SimDuration::from_secs(deadline);
        let mut seen = Vec::new();
        sim.run_until(cutoff, |_, ev| seen.push(ev.payload));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(seen.len(), expected);
        prop_assert_eq!(sim.pending(), times.len() - expected);
    }
}
