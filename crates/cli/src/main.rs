//! `vecycle` — the command-line front end.
//!
//! ```text
//! vecycle trace gen --machine "Server A" --out server-a.vtrc [--scale N]
//! vecycle trace stat <file.vtrc>
//! vecycle checkpoint inspect <file.ckpt>
//! vecycle estimate --ram 4GiB --similarity 0.6 --link wan
//! vecycle simulate migrate --ram 1GiB --similarity 0.8 --link lan
//! vecycle simulate vdi [--policy vecycle|dedup|baseline]
//! ```

use std::process::ExitCode;

use vecycle_cli::commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `vecycle help` for usage");
            ExitCode::FAILURE
        }
    }
}
