//! Subcommand dispatch and implementations.

use vecycle_analysis::Table;
use vecycle_bench::soak::{fresh_soak_dir, run_soak, SoakOptions};
use vecycle_checkpoint::{Checkpoint, EvictionPolicy};
use vecycle_core::session::{
    RecyclePolicy, ScheduleSummary, SessionEvent, VeCycleSession, VmInstance,
};
use vecycle_core::{estimate, MigrationEngine, MigrationReport, Strategy};
use vecycle_faults::{FaultPlan, RetryPolicy};
use vecycle_host::{Cluster, CpuSpec, MigrationSchedule};
use vecycle_mem::workload::{GuestWorkload, IdleWorkload};
use vecycle_mem::{DigestMemory, Guest, MemoryImage, MutableMemory, PageContent};
use vecycle_net::LinkSpec;
use vecycle_obs::MetricsRegistry;
use vecycle_sim::chaos::ChaosConfig;
use vecycle_trace::{catalog, Trace, TraceGenerator, TraceStats};
use vecycle_types::{Bytes, HostId, PageIndex, Ratio, VmId};

use crate::args::{parse_duration, parse_faults, parse_link, parse_size, Args};

const HELP: &str = "\
vecycle — checkpoint-recycled VM migration simulator

USAGE:
  vecycle trace gen --machine <name> --out <file.vtrc> [--scale N] [--seed N]
  vecycle trace stat <file.vtrc>
  vecycle trace list
  vecycle checkpoint inspect <file.ckpt>
  vecycle estimate --ram <size> --similarity <0..1> [--link lan|wan|wan:p%]
  vecycle simulate migrate --ram <size> --similarity <0..1> [--link ...] [--seed N]
  vecycle simulate vdi [--policy vecycle|dedup|baseline|adaptive] [--ram <size>]
  vecycle simulate pingpong [--ram <size>] [--gap 2h] [--count 10]
  vecycle simulate chaos [--chaos seed=42,legs=100,crash=0.1,pressure=0.3]
  vecycle help

`simulate vdi` and `simulate pingpong` also accept fault injection and
checkpoint lifecycle pressure:
  --faults seed=7,drop=0.3,degrade=0.2,corrupt=0.1,spike=0.2,crash=0.1,hostcrash=0.1
  --retry N              max attempts per migration (default 3)
  --disk-quota <size>    per-host checkpoint byte budget (evictions and
                         refused saves land in the incident log)
  --evict-policy <name>  oldest | lru | largest | staleness (needs --disk-quota)
  --metrics-out <file>   write the run's metrics timeline as JSONL
                         (spans + events; see DESIGN.md §10)

`simulate chaos` runs the seeded chaos soak (crashes, disk pressure,
corruption, link drops, netem loss) and checks the survivability
invariants after every leg; it also accepts --disk-quota, --evict-policy
and --threads.

Sizes look like 4GiB / 512MiB; machines are Table-1 names (try
`vecycle trace list`).";

/// Runs a command line. Returns a user-facing error string on failure.
///
/// # Errors
///
/// Every user mistake (unknown subcommand, bad flag, missing file)
/// surfaces here as a message.
pub fn run(argv: &[String]) -> Result<(), String> {
    let (cmd, rest) = match argv.split_first() {
        None => return Err("no subcommand".into()),
        Some((c, r)) => (c.as_str(), r),
    };
    match cmd {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "trace" => trace_cmd(rest),
        "checkpoint" => checkpoint_cmd(rest),
        "estimate" => estimate_cmd(rest),
        "simulate" => simulate_cmd(rest),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn trace_cmd(argv: &[String]) -> Result<(), String> {
    let (sub, rest) = argv
        .split_first()
        .ok_or("trace needs a subcommand: gen | stat | list")?;
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "list" => {
            let mut t = Table::new(vec!["machine", "kind", "ram", "trace span"]);
            for m in catalog() {
                t.row(vec![
                    m.name.into(),
                    m.kind.to_string(),
                    format!("{}", m.ram()),
                    format!("{:.0} days", m.profile.trace_duration.as_hours_f64() / 24.0),
                ]);
            }
            print!("{}", t.render());
            Ok(())
        }
        "gen" => {
            let name = args.require("machine")?;
            let out = args.require("out")?;
            let scale: u64 = args.get_parsed("scale", 1024)?;
            let seed: u64 = args.get_parsed("seed", 0x7ec)?;
            let machine = catalog()
                .into_iter()
                .find(|m| m.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| format!("no machine named {name:?} (see `vecycle trace list`)"))?;
            let pages = ((machine.ram().as_gib_f64() * scale as f64).round() as u64).max(64);
            let trace = TraceGenerator::new(machine.profile.clone(), seed)
                .scale_pages(pages)
                .generate()
                .map_err(|e| e.to_string())?;
            let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
            trace
                .write_to(std::io::BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            println!(
                "wrote {} fingerprints × {pages} pages to {out}",
                trace.fingerprints().len()
            );
            Ok(())
        }
        "stat" => {
            let path = args
                .positional()
                .first()
                .ok_or("trace stat needs a file argument")?;
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let trace =
                Trace::read_from(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
            println!("{path}: nominal RAM {}", trace.ram());
            println!("{}", TraceStats::compute(&trace));
            Ok(())
        }
        other => Err(format!("unknown trace subcommand {other:?}")),
    }
}

fn checkpoint_cmd(argv: &[String]) -> Result<(), String> {
    let (sub, rest) = argv
        .split_first()
        .ok_or("checkpoint needs a subcommand: inspect")?;
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "inspect" => {
            let path = args
                .positional()
                .first()
                .ok_or("checkpoint inspect needs a file argument")?;
            let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
            let cp =
                Checkpoint::read_from(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
            let index = cp.build_index();
            use vecycle_checkpoint::PageLookup;
            println!("{path}:");
            println!("  vm:            {}", cp.vm());
            println!("  taken at:      {}", cp.taken_at());
            println!("  pages:         {}", cp.page_count().as_u64());
            println!("  ram:           {}", cp.ram_size());
            println!("  storage:       {}", cp.storage_size());
            println!("  distinct:      {} hashes", index.distinct());
            println!("  exchange size: {}", index.wire_size());
            Ok(())
        }
        other => Err(format!("unknown checkpoint subcommand {other:?}")),
    }
}

fn estimate_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let ram = parse_size(args.require("ram")?)?;
    let similarity: f64 = args.get_parsed("similarity", f64::NAN)?;
    if !(0.0..=1.0).contains(&similarity) {
        return Err("--similarity must be in [0, 1]".into());
    }
    let link = parse_link(args.get("link").unwrap_or("lan"))?;
    let cpu = CpuSpec::phenom_ii();
    let full = estimate::estimate_full(ram, Ratio::ZERO, link);
    let vecycle = estimate::estimate_vecycle(
        ram,
        Ratio::new(similarity),
        Ratio::ZERO,
        link,
        &cpu,
        vecycle_hash::ChecksumAlgorithm::Md5,
    );
    let mut t = Table::new(vec!["strategy", "traffic", "time"]);
    t.row(vec![
        "full".into(),
        format!("{}", full.traffic),
        format!("{}", full.time),
    ]);
    t.row(vec![
        "vecycle".into(),
        format!("{}", vecycle.traffic),
        format!("{}", vecycle.time),
    ]);
    print!("{}", t.render());
    match estimate::break_even_similarity(ram, link, &cpu, vecycle_hash::ChecksumAlgorithm::Md5) {
        Some(s) => println!("break-even similarity on this link: {s}"),
        None => println!("vecycle cannot beat a full migration on this link"),
    }
    Ok(())
}

/// Parses the `--disk-quota` / `--evict-policy` pair into a per-host
/// checkpoint budget. `--evict-policy` alone is rejected: a policy only
/// means something once there is a quota to enforce.
fn lifecycle_flags(args: &Args) -> Result<Option<(Bytes, EvictionPolicy)>, String> {
    let Some(spec) = args.get("disk-quota") else {
        if args.get("evict-policy").is_some() {
            return Err("--evict-policy needs --disk-quota".into());
        }
        return Ok(None);
    };
    let quota = parse_size(spec)?;
    let policy = match args.get("evict-policy") {
        None => EvictionPolicy::OldestFirst,
        Some(name) => EvictionPolicy::parse(name).ok_or_else(|| {
            format!("unknown eviction policy {name:?} (oldest|lru|largest|staleness)")
        })?,
    };
    Ok(Some((quota, policy)))
}

/// Counts the checkpoint-lifecycle incidents in a run's event stream;
/// `None` when nothing lifecycle-related happened.
fn lifecycle_summary(events: &[SessionEvent]) -> Option<String> {
    let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
    let evicted = count("checkpoint_evicted");
    let refused = count("checkpoint_save_refused");
    let restarts = count("host_restarted");
    let quarantined = count("checkpoint_quarantined");
    if evicted + refused + restarts + quarantined == 0 {
        return None;
    }
    Some(format!(
        "lifecycle: {evicted} evictions, {refused} saves refused, {restarts} host restarts, \
         {quarantined} quarantined"
    ))
}

/// Runs `schedule` through `session`, injecting faults when `--faults`
/// was given, and prints the incident log. A `--disk-quota` run without
/// faults still goes through the event-collecting path so evictions and
/// refused saves reach the incident log. With `--metrics-out <file>`
/// the run is instrumented and its timeline written as JSONL (one span
/// or event per line). Returns the reports and the incident events.
fn run_with_optional_faults<M, W>(
    args: &Args,
    session: VeCycleSession,
    vm: &mut VmInstance<M>,
    schedule: &MigrationSchedule,
    workload: &mut W,
) -> Result<(Vec<MigrationReport>, Vec<SessionEvent>), String>
where
    M: MutableMemory,
    W: GuestWorkload<M>,
{
    let retry: u32 = args.get_parsed("retry", 3)?;
    let mut session = session.with_retry_policy(RetryPolicy::default().with_max_attempts(retry));
    let metrics = args.get("metrics-out").map(|_| MetricsRegistry::new());
    if let Some(m) = &metrics {
        session = session.with_metrics(m.clone());
    }
    let fault_spec = args.get("faults");
    let (reports, events) = if fault_spec.is_some() || args.get("disk-quota").is_some() {
        let plan = match fault_spec {
            Some(spec) => {
                let (fault_seed, rates) = parse_faults(spec)?;
                FaultPlan::seeded(fault_seed, &rates, schedule.len())
            }
            None => FaultPlan::none(),
        };
        let run = session
            .run_schedule_with_faults(vm, schedule, workload, &plan)
            .map_err(|e| e.to_string())?;
        (run.reports, run.events)
    } else {
        let reports = session
            .run_schedule(vm, schedule, workload)
            .map_err(|e| e.to_string())?;
        (reports, Vec::new())
    };
    if !events.is_empty() {
        println!("incidents:");
        for e in &events {
            println!("  {e}");
        }
    }
    if let Some(m) = &metrics {
        let path = args.get("metrics-out").expect("checked above");
        std::fs::write(path, m.snapshot().events_jsonl()).map_err(|e| e.to_string())?;
        println!("metrics timeline written to {path}");
    }
    Ok((reports, events))
}

fn simulate_cmd(argv: &[String]) -> Result<(), String> {
    let (sub, rest) = argv
        .split_first()
        .ok_or("simulate needs a subcommand: migrate | vdi")?;
    let args = Args::parse(rest)?;
    match sub.as_str() {
        "migrate" => {
            let ram = parse_size(args.require("ram")?)?;
            let similarity: f64 = args.get_parsed("similarity", 1.0)?;
            if !(0.0..=1.0).contains(&similarity) {
                return Err("--similarity must be in [0, 1]".into());
            }
            let link = parse_link(args.get("link").unwrap_or("lan"))?;
            let seed: u64 = args.get_parsed("seed", 1)?;
            if ram.as_u64() % vecycle_types::PAGE_SIZE != 0 || ram.is_zero() {
                return Err("--ram must be a positive multiple of 4KiB".into());
            }

            let base = DigestMemory::with_uniform_content(ram, seed).map_err(|e| e.to_string())?;
            let mut vm = base.snapshot();
            let novel = ((1.0 - similarity) * vm.page_count().as_u64() as f64).round() as u64;
            for i in 0..novel {
                vm.write_page(PageIndex::new(i), PageContent::ContentId((1 << 54) | i));
            }
            let engine = MigrationEngine::new(link);
            let full = engine
                .migrate(&vm, Strategy::full())
                .map_err(|e| e.to_string())?;
            let re = engine
                .migrate(&vm, Strategy::vecycle(&base))
                .map_err(|e| e.to_string())?;
            println!("{full}");
            println!("{re}");
            println!(
                "reduction: traffic -{:.0}%, time -{:.0}%",
                (1.0 - re.source_traffic().as_f64() / full.source_traffic().as_f64()) * 100.0,
                (1.0 - re.total_time().as_secs_f64() / full.total_time().as_secs_f64()) * 100.0,
            );
            Ok(())
        }
        "vdi" => {
            let ram = parse_size(args.get("ram").unwrap_or("256MiB"))?;
            let policy = match args.get("policy").unwrap_or("vecycle") {
                "vecycle" => RecyclePolicy::VeCycle,
                "dedup" => RecyclePolicy::DedupOnly,
                "baseline" => RecyclePolicy::Baseline,
                "adaptive" => RecyclePolicy::Adaptive {
                    min_similarity: 0.3,
                },
                other => return Err(format!("unknown policy {other:?}")),
            };
            if ram.as_u64() % vecycle_types::PAGE_SIZE != 0 || ram.is_zero() {
                return Err("--ram must be a positive multiple of 4KiB".into());
            }
            let seed: u64 = args.get_parsed("seed", 3)?;

            let mut cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
            if let Some((quota, evict)) = lifecycle_flags(&args)? {
                cluster = cluster.with_checkpoint_quotas(quota, evict);
            }
            let session = VeCycleSession::new(cluster).with_policy(policy);
            let mem = DigestMemory::with_uniform_content(ram, seed).map_err(|e| e.to_string())?;
            let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(1));
            let schedule = MigrationSchedule::vdi(VmId::new(0), HostId::new(0), HostId::new(1), 19);
            // ~20% of pages touched per 8h working stretch.
            let rate = ram.pages_ceil().as_u64() as f64 * 0.2 / (8.0 * 3600.0);
            let mut workload = IdleWorkload::new(seed ^ 1, rate);
            let (reports, events) =
                run_with_optional_faults(&args, session, &mut vm, &schedule, &mut workload)?;

            let mut t = Table::new(vec![
                "#", "strategy", "outcome", "traffic", "% of ram", "time",
            ]);
            for (i, r) in reports.iter().enumerate() {
                t.row(vec![
                    format!("{}", i + 1),
                    r.strategy().to_string(),
                    r.outcome().to_string(),
                    format!("{}", r.source_traffic()),
                    format!("{:.0}%", r.traffic_fraction_of_ram().as_percent()),
                    format!("{}", r.total_time()),
                ]);
            }
            print!("{}", t.render());
            println!("{}", ScheduleSummary::of(&reports));
            if let Some(line) = lifecycle_summary(&events) {
                println!("{line}");
            }
            Ok(())
        }
        "pingpong" => {
            let ram = parse_size(args.get("ram").unwrap_or("128MiB"))?;
            let gap = parse_duration(args.get("gap").unwrap_or("2h"))?;
            let count: u64 = args.get_parsed("count", 10)?;
            if count == 0 {
                return Err("--count must be positive".into());
            }
            if ram.as_u64() % vecycle_types::PAGE_SIZE != 0 || ram.is_zero() {
                return Err("--ram must be a positive multiple of 4KiB".into());
            }
            let seed: u64 = args.get_parsed("seed", 5)?;

            let mut cluster = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
            if let Some((quota, evict)) = lifecycle_flags(&args)? {
                cluster = cluster.with_checkpoint_quotas(quota, evict);
            }
            let session = VeCycleSession::new(cluster);
            let mem = DigestMemory::with_uniform_content(ram, seed).map_err(|e| e.to_string())?;
            let mut vm = VmInstance::new(VmId::new(0), Guest::new(mem), HostId::new(0));
            let schedule = MigrationSchedule::ping_pong(
                VmId::new(0),
                HostId::new(0),
                HostId::new(1),
                vecycle_types::SimTime::EPOCH + gap,
                gap,
                count,
            );
            let rate = ram.pages_ceil().as_u64() as f64 * 0.05 / gap.as_secs_f64();
            let mut workload = IdleWorkload::new(seed ^ 1, rate);
            let (reports, events) =
                run_with_optional_faults(&args, session, &mut vm, &schedule, &mut workload)?;
            let mut t = Table::new(vec!["#", "strategy", "outcome", "traffic", "time"]);
            for (i, r) in reports.iter().enumerate() {
                t.row(vec![
                    format!("{}", i + 1),
                    r.strategy().to_string(),
                    r.outcome().to_string(),
                    format!("{}", r.source_traffic()),
                    format!("{}", r.total_time()),
                ]);
            }
            print!("{}", t.render());
            println!("{}", ScheduleSummary::of(&reports));
            if let Some(line) = lifecycle_summary(&events) {
                println!("{line}");
            }
            Ok(())
        }
        "chaos" => {
            let config =
                ChaosConfig::parse(args.get("chaos").unwrap_or("")).map_err(|e| e.to_string())?;
            let mut opts = SoakOptions::new(config);
            opts.disk_root = fresh_soak_dir(&format!("cli-{}", config.seed));
            if let Some((quota, evict)) = lifecycle_flags(&args)? {
                opts.quota = quota;
                opts.policy = evict;
            }
            opts.threads = args.get_parsed("threads", opts.threads)?;
            if opts.threads == 0 {
                return Err("--threads must be positive".into());
            }
            println!(
                "chaos soak — seed {}, {} legs across {} hosts, quota {} ({} eviction)",
                config.seed, config.legs, config.hosts, opts.quota, opts.policy
            );
            let report = run_soak(&opts).map_err(|e| e.to_string())?;
            if !report.events.is_empty() {
                println!("incidents:");
                for e in &report.events {
                    println!("  {e}");
                }
            }
            println!("{}", report.summary());
            if !report.violations.is_empty() {
                return Err(format!(
                    "invariants violated:\n  {}",
                    report.violations.join("\n  ")
                ));
            }
            Ok(())
        }
        other => Err(format!("unknown simulate subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_runs() {
        run(&argv(&["help"])).unwrap();
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
        assert!(run(&argv(&[])).is_err());
    }

    #[test]
    fn trace_list_runs() {
        run(&argv(&["trace", "list"])).unwrap();
    }

    #[test]
    fn trace_gen_and_stat_round_trip() {
        let dir = std::env::temp_dir().join(format!("vecycle-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.vtrc");
        run(&argv(&[
            "trace",
            "gen",
            "--machine",
            "Server A",
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "64",
        ]))
        .unwrap();
        run(&argv(&["trace", "stat", path.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn trace_gen_unknown_machine_errors() {
        let err = run(&argv(&[
            "trace",
            "gen",
            "--machine",
            "Server Z",
            "--out",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert!(err.contains("no machine"));
    }

    #[test]
    fn estimate_validates_similarity() {
        assert!(run(&argv(&["estimate", "--ram", "1GiB", "--similarity", "1.5"])).is_err());
        run(&argv(&[
            "estimate",
            "--ram",
            "1GiB",
            "--similarity",
            "0.8",
            "--link",
            "wan",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_migrate_runs() {
        run(&argv(&[
            "simulate",
            "migrate",
            "--ram",
            "16MiB",
            "--similarity",
            "0.75",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_migrate_rejects_bad_ram() {
        assert!(run(&argv(&[
            "simulate",
            "migrate",
            "--ram",
            "1000",
            "--similarity",
            "0.5",
        ]))
        .is_err());
    }

    #[test]
    fn simulate_vdi_all_policies_run() {
        for policy in ["vecycle", "dedup", "baseline", "adaptive"] {
            run(&argv(&[
                "simulate", "vdi", "--ram", "16MiB", "--policy", policy,
            ]))
            .unwrap();
        }
        assert!(run(&argv(&["simulate", "vdi", "--policy", "magic"])).is_err());
    }

    #[test]
    fn simulate_pingpong_runs() {
        run(&argv(&[
            "simulate", "pingpong", "--ram", "8MiB", "--gap", "1h", "--count", "4",
        ]))
        .unwrap();
        assert!(run(&argv(&["simulate", "pingpong", "--count", "0"])).is_err());
        assert!(run(&argv(&["simulate", "pingpong", "--gap", "90m"])).is_err());
    }

    #[test]
    fn simulate_with_faults_runs() {
        run(&argv(&[
            "simulate",
            "pingpong",
            "--ram",
            "8MiB",
            "--gap",
            "1h",
            "--count",
            "4",
            "--faults",
            "seed=7,drop=0.5,corrupt=0.5,crash=0.5",
            "--retry",
            "2",
        ]))
        .unwrap();
        run(&argv(&[
            "simulate",
            "vdi",
            "--ram",
            "8MiB",
            "--faults",
            "seed=3,drop=0.3,degrade=0.3,spike=0.3",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_metrics_out_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("vecycle-cli-mx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        run(&argv(&[
            "simulate",
            "pingpong",
            "--ram",
            "8MiB",
            "--gap",
            "1h",
            "--count",
            "2",
            "--metrics-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "timeline must not be empty");
        assert!(
            text.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
            "every line must be a JSON object"
        );
        assert!(text.contains("\"migration\""));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn simulate_rejects_bad_fault_specs() {
        assert!(run(&argv(&[
            "simulate",
            "vdi",
            "--ram",
            "8MiB",
            "--faults",
            "meteor=0.5",
        ]))
        .is_err());
        assert!(run(&argv(&[
            "simulate", "vdi", "--ram", "8MiB", "--faults", "drop=7",
        ]))
        .is_err());
    }

    #[test]
    fn simulate_with_disk_quota_runs_and_reports_lifecycle() {
        // A quota of one checkpoint (16 bytes per page for an 8 MiB
        // digest VM = 32 KiB) forces the second host's save to evict or
        // refuse — either way the lifecycle path is exercised.
        run(&argv(&[
            "simulate",
            "pingpong",
            "--ram",
            "8MiB",
            "--gap",
            "1h",
            "--count",
            "6",
            "--disk-quota",
            "32KiB",
            "--evict-policy",
            "lru",
        ]))
        .unwrap();
        // Quotas compose with fault injection, including host crashes.
        run(&argv(&[
            "simulate",
            "vdi",
            "--ram",
            "8MiB",
            "--disk-quota",
            "16KiB",
            "--faults",
            "seed=11,drop=0.3,hostcrash=0.4",
        ]))
        .unwrap();
    }

    #[test]
    fn lifecycle_flags_are_validated() {
        let err = run(&argv(&[
            "simulate",
            "pingpong",
            "--ram",
            "8MiB",
            "--evict-policy",
            "lru",
        ]))
        .unwrap_err();
        assert!(err.contains("--disk-quota"), "{err}");
        let err = run(&argv(&[
            "simulate",
            "pingpong",
            "--ram",
            "8MiB",
            "--disk-quota",
            "32KiB",
            "--evict-policy",
            "roulette",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown eviction policy"), "{err}");
    }

    #[test]
    fn simulate_chaos_runs_and_rejects_bad_specs() {
        run(&argv(&[
            "simulate",
            "chaos",
            "--chaos",
            "seed=9,legs=25,hosts=2,crash=0.2,pressure=0.5,corrupt=0.1,drop=0.2",
            "--disk-quota",
            "640KiB",
            "--evict-policy",
            "staleness",
        ]))
        .unwrap();
        assert!(run(&argv(&["simulate", "chaos", "--chaos", "meteor=1"])).is_err());
        assert!(run(&argv(&["simulate", "chaos", "--chaos", "crash=2.0"])).is_err());
    }

    #[test]
    fn checkpoint_inspect_round_trip() {
        use vecycle_types::{PageCount, SimTime};
        let dir = std::env::temp_dir().join(format!("vecycle-cli-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vm.ckpt");
        let mem = DigestMemory::with_distinct_content(PageCount::new(16), 1);
        let cp = Checkpoint::capture(VmId::new(3), SimTime::EPOCH, &mem);
        cp.write_to(std::fs::File::create(&path).unwrap()).unwrap();
        run(&argv(&["checkpoint", "inspect", path.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_inspect_missing_file_errors() {
        assert!(run(&argv(&["checkpoint", "inspect", "/nonexistent.ckpt"])).is_err());
    }
}
