//! Minimal argument parsing: `--flag value` pairs plus positionals.

use std::collections::HashMap;

use vecycle_faults::FaultRates;
use vecycle_net::{LinkSpec, Netem};
use vecycle_types::{Bytes, SimDuration};

/// Parsed arguments: named `--key value` options and positional args.
#[derive(Debug, Default)]
pub struct Args {
    named: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Fails on a `--flag` without a value or a repeated flag.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} requires a value"))?;
                if out.named.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// A named option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.named.get(key).map(String::as_str)
    }

    /// A required named option.
    ///
    /// # Errors
    ///
    /// Fails when the option is missing.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A named option parsed with `FromStr`, with a default.
    ///
    /// # Errors
    ///
    /// Fails when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

/// Parses a human byte size: `4GiB`, `512MiB`, `64KiB`, or raw bytes.
///
/// # Errors
///
/// Fails on unknown suffixes or non-numeric values.
pub fn parse_size(s: &str) -> Result<Bytes, String> {
    Bytes::parse(s).map_err(|e| e.to_string())
}

/// Parses a link spec: `lan`, `wan`, or `wan:<loss%>` for a lossy WAN.
///
/// # Errors
///
/// Fails on unknown names or malformed loss values.
pub fn parse_link(s: &str) -> Result<LinkSpec, String> {
    match s {
        "lan" => Ok(LinkSpec::lan_gigabit()),
        "wan" => Ok(LinkSpec::wan_cloudnet()),
        other => {
            if let Some(loss) = other.strip_prefix("wan:") {
                let pct: f64 = loss
                    .strip_suffix('%')
                    .unwrap_or(loss)
                    .parse()
                    .map_err(|_| format!("cannot parse loss {loss:?}"))?;
                if !(0.0..100.0).contains(&pct) {
                    return Err(format!("loss {pct}% out of range"));
                }
                Ok(Netem::new()
                    .loss(pct / 100.0)
                    .apply(LinkSpec::wan_cloudnet()))
            } else {
                Err(format!("unknown link {other:?} (try lan, wan, wan:0.1%)"))
            }
        }
    }
}

/// Parses a duration in hours (`16h`) or days (`2d`).
///
/// # Errors
///
/// Fails on unknown suffixes or non-numeric values.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    if let Some(d) = s.strip_suffix('h') {
        let h: u64 = d.parse().map_err(|_| format!("cannot parse hours {s:?}"))?;
        Ok(SimDuration::from_hours(h))
    } else if let Some(d) = s.strip_suffix('d') {
        let days: u64 = d.parse().map_err(|_| format!("cannot parse days {s:?}"))?;
        Ok(SimDuration::from_days(days))
    } else {
        Err(format!("cannot parse duration {s:?} (try 16h or 2d)"))
    }
}

/// Parses a fault-injection spec: comma-separated `key=value` pairs.
///
/// Keys: `seed=<u64>` (plan seed, default 0) and per-fault probabilities
/// in `[0, 1]` — `drop`, `degrade`, `corrupt`, `spike`, `crash` (source
/// crash while saving), `hostcrash` (destination dies mid-transfer and
/// restarts from a scrubbed disk store). Example:
/// `seed=7,drop=0.3,corrupt=0.1,hostcrash=0.2`.
///
/// # Errors
///
/// Fails on unknown or duplicate keys, malformed numbers, or
/// out-of-range rates. Repeated keys are rejected rather than
/// last-wins: a spec that names the same fault twice almost certainly
/// means the operator edited the wrong copy, and the incident log
/// would otherwise record a configuration that was never intended.
pub fn parse_faults(s: &str) -> Result<(u64, FaultRates), String> {
    let mut seed = 0u64;
    let mut rates = FaultRates::none();
    let mut seen: Vec<&str> = Vec::new();
    for pair in s.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("fault spec {pair:?} is not key=value"))?;
        if seen.contains(&key) {
            return Err(format!("fault key {key:?} given twice"));
        }
        seen.push(key);
        if key == "seed" {
            seed = value
                .parse()
                .map_err(|_| format!("cannot parse fault seed {value:?}"))?;
            continue;
        }
        let rate: f64 = value
            .parse()
            .map_err(|_| format!("cannot parse fault rate {value:?}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {key}={rate} out of [0, 1]"));
        }
        match key {
            "drop" => rates.link_drop = rate,
            "degrade" => rates.link_degrade = rate,
            "corrupt" => rates.corrupt_checkpoint = rate,
            "spike" => rates.dirty_spike = rate,
            "crash" => rates.crash_on_save = rate,
            "hostcrash" => rates.host_crash = rate,
            other => {
                return Err(format!(
                    "unknown fault {other:?} (try drop, degrade, corrupt, spike, crash, hostcrash)"
                ))
            }
        }
    }
    Ok((seed, rates))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_mixed_args() {
        let a = Args::parse(&argv(&["pos1", "--ram", "4GiB", "pos2", "--seed", "7"])).unwrap();
        assert_eq!(a.positional(), &["pos1", "pos2"]);
        assert_eq!(a.get("ram"), Some("4GiB"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_parsed("missing", 42u64).unwrap(), 42);
        assert!(a.require("ram").is_ok());
        assert!(a.require("nope").is_err());
    }

    #[test]
    fn flags_need_values_and_cannot_repeat() {
        assert!(Args::parse(&argv(&["--dangling"])).is_err());
        assert!(Args::parse(&argv(&["--x", "1", "--x", "2"])).is_err());
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("4GiB").unwrap(), Bytes::from_gib(4));
        assert_eq!(parse_size("512MiB").unwrap(), Bytes::from_mib(512));
        assert_eq!(parse_size("64KiB").unwrap(), Bytes::from_kib(64));
        assert_eq!(parse_size("4096").unwrap(), Bytes::new(4096));
        assert!(parse_size("4GB").is_err());
        assert!(parse_size("abc").is_err());
    }

    #[test]
    fn links() {
        assert_eq!(parse_link("lan").unwrap(), LinkSpec::lan_gigabit());
        assert_eq!(parse_link("wan").unwrap(), LinkSpec::wan_cloudnet());
        let lossy = parse_link("wan:0.5%").unwrap();
        assert!(
            lossy.effective_bandwidth().as_f64()
                < LinkSpec::wan_cloudnet().effective_bandwidth().as_f64()
        );
        assert!(parse_link("dsl").is_err());
        assert!(parse_link("wan:150%").is_err());
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("16h").unwrap(), SimDuration::from_hours(16));
        assert_eq!(parse_duration("2d").unwrap(), SimDuration::from_days(2));
        assert!(parse_duration("90m").is_err());
    }

    #[test]
    fn fault_specs() {
        let (seed, rates) = parse_faults("seed=7,drop=0.3,corrupt=0.1").unwrap();
        assert_eq!(seed, 7);
        assert_eq!(rates.link_drop, 0.3);
        assert_eq!(rates.corrupt_checkpoint, 0.1);
        assert_eq!(rates.crash_on_save, 0.0);
        let (seed, rates) = parse_faults("crash=1,spike=0.5,degrade=0.25").unwrap();
        assert_eq!(seed, 0);
        assert_eq!(rates.crash_on_save, 1.0);
        assert_eq!(rates.dirty_spike, 0.5);
        assert_eq!(rates.link_degrade, 0.25);
        let (_, rates) = parse_faults("hostcrash=0.4").unwrap();
        assert_eq!(rates.host_crash, 0.4);
        assert!(parse_faults("drop").is_err());
        assert!(parse_faults("drop=2.0").is_err());
        assert!(parse_faults("meteor=0.1").is_err());
        assert!(parse_faults("seed=x").is_err());
    }

    #[test]
    fn fault_spec_duplicate_keys_are_rejected() {
        assert!(parse_faults("drop=0.1,drop=0.2").is_err());
        assert!(parse_faults("seed=1,corrupt=0.1,seed=2").is_err());
    }

    /// These errors land verbatim in the CLI incident log; pin the exact
    /// strings so log-grepping tooling stays stable.
    #[test]
    fn fault_spec_error_strings_are_pinned() {
        let msg = |spec: &str| parse_faults(spec).unwrap_err();
        assert_eq!(msg("drop=0.1,drop=0.2"), "fault key \"drop\" given twice");
        assert_eq!(msg("drop"), "fault spec \"drop\" is not key=value");
        assert_eq!(msg("drop=2.0"), "fault rate drop=2 out of [0, 1]");
        assert_eq!(msg("drop=zz"), "cannot parse fault rate \"zz\"");
        assert_eq!(msg("seed=x"), "cannot parse fault seed \"x\"");
        assert_eq!(
            msg("meteor=0.1"),
            "unknown fault \"meteor\" (try drop, degrade, corrupt, spike, crash, hostcrash)"
        );
    }
}
