//! `vecycle-cli` as a library: the argument grammars and subcommand
//! dispatch behind the `vecycle` binary.
//!
//! The split exists so the grammars in [`args`] — `parse_size`,
//! `parse_link`, `parse_duration`, `parse_faults` — are reachable from
//! the adversarial-hardening harness (`vecycle-fuzz`): anything an
//! operator can type on a command line is a parser input surface, and
//! surfaces need fuzz targets.

pub mod args;
pub mod commands;
