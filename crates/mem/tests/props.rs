//! Property tests: trackers against reference models.

use std::collections::HashSet;

use proptest::collection::vec;
use proptest::prelude::*;

use vecycle_mem::{
    DigestMemory, DirtyTracker, GenerationTable, Guest, MemoryImage, MutableMemory, PageContent,
};
use vecycle_types::{PageCount, PageIndex};

const PAGES: u64 = 96;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DirtyTracker behaves exactly like a sorted set of marked pages.
    #[test]
    fn dirty_tracker_matches_set_model(marks in vec(0u64..PAGES, 0..300)) {
        let mut tracker = DirtyTracker::new(PageCount::new(PAGES));
        let mut model: HashSet<u64> = HashSet::new();
        for m in marks {
            tracker.mark(PageIndex::new(m));
            model.insert(m);
            prop_assert!(tracker.is_dirty(PageIndex::new(m)));
        }
        prop_assert_eq!(tracker.dirty_count().as_u64(), model.len() as u64);
        let mut expected: Vec<u64> = model.into_iter().collect();
        expected.sort_unstable();
        let drained: Vec<u64> = tracker.drain().into_iter().map(|p| p.as_u64()).collect();
        prop_assert_eq!(drained, expected);
        prop_assert_eq!(tracker.dirty_count().as_u64(), 0);
    }

    /// A guest's dirty set and changed-content set coincide for
    /// fresh-content writes (no recycling, no relocation).
    #[test]
    fn dirty_set_equals_diff_for_fresh_writes(writes in vec(0u64..PAGES, 0..64)) {
        let mem = DigestMemory::with_distinct_content(PageCount::new(PAGES), 7);
        let snapshot = mem.snapshot();
        let mut guest = Guest::new(mem);
        for (i, w) in writes.iter().enumerate() {
            guest.write_page(
                PageIndex::new(*w),
                PageContent::ContentId((1 << 50) | i as u64),
            );
        }
        let diff = guest.memory().pages_differing_from(&snapshot);
        // Every changed page is dirty; a page rewritten repeatedly is
        // one dirty bit; a dirty page always differs because content is
        // always fresh.
        prop_assert_eq!(guest.dirty().dirty_count(), diff);
    }

    /// Generations count writes exactly.
    #[test]
    fn generation_counts_writes(writes in vec(0u64..PAGES, 0..200)) {
        let mut table = GenerationTable::new(PageCount::new(PAGES));
        let mut counts = vec![0u64; PAGES as usize];
        for w in &writes {
            table.bump(PageIndex::new(*w));
            counts[*w as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            prop_assert_eq!(table.generation(PageIndex::new(i as u64)).as_u64(), c);
        }
    }

    /// Relocation never invents content: digests after any relocation
    /// sequence are a subset of digests before.
    #[test]
    fn relocation_preserves_content_universe(moves in vec((0u64..PAGES, 0u64..PAGES), 0..64)) {
        let mut mem = DigestMemory::with_distinct_content(PageCount::new(PAGES), 9);
        let before: HashSet<_> = mem.digests().into_iter().collect();
        for (src, dst) in moves {
            mem.relocate_page(PageIndex::new(src), PageIndex::new(dst));
        }
        for d in mem.digests() {
            prop_assert!(before.contains(&d));
        }
    }
}
