//! [`DigestMemory`]: a guest memory image storing one digest per page.

use vecycle_types::{Bytes, PageCount, PageDigest, PageIndex};

use crate::{MemoryImage, MutableMemory, PageContent};

/// A guest memory image that stores only per-page content digests.
///
/// This is the scalable representation: a 6 GiB guest (1.5 M pages) costs
/// ~24 MiB. All traffic-reduction strategies operate on digests, so this
/// image supports everything except byte-exact reconstruction checks.
///
/// # Examples
///
/// ```
/// use vecycle_mem::{DigestMemory, MemoryImage, MutableMemory, PageContent};
/// use vecycle_types::{Bytes, PageIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut vm = DigestMemory::with_uniform_content(Bytes::from_mib(1), 7)?;
/// let before = vm.page_digest(PageIndex::new(0));
/// vm.write_page(PageIndex::new(0), PageContent::ContentId(999));
/// assert_ne!(vm.page_digest(PageIndex::new(0)), before);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestMemory {
    pages: Vec<PageDigest>,
}

impl DigestMemory {
    /// Creates an image of all-zero pages.
    pub fn zeroed(pages: PageCount) -> Self {
        DigestMemory {
            pages: vec![PageDigest::ZERO_PAGE; pages.as_usize()],
        }
    }

    /// Creates an image where every page holds content derived from a
    /// single `seed` — pages are distinct from each other but the whole
    /// image is reproducible from the seed.
    ///
    /// This models the paper's best-case setup (§4.4): a guest that filled
    /// its memory once (95 % random data) and then idles, so consecutive
    /// snapshots are nearly identical.
    ///
    /// # Errors
    ///
    /// Returns [`vecycle_types::Error::InvalidConfig`] if `ram` is not a
    /// whole number of pages or is zero.
    pub fn with_uniform_content(ram: Bytes, seed: u64) -> vecycle_types::Result<Self> {
        if ram.is_zero() || !ram.as_u64().is_multiple_of(vecycle_types::PAGE_SIZE) {
            return Err(vecycle_types::Error::InvalidConfig {
                reason: format!("ram size {ram} must be a positive multiple of the page size"),
            });
        }
        let n = ram.pages_ceil();
        Ok(DigestMemory::with_distinct_content(n, seed))
    }

    /// Creates an image of `pages` pages, each with distinct content
    /// derived from `seed`.
    pub fn with_distinct_content(pages: PageCount, seed: u64) -> Self {
        let pages = (0..pages.as_u64())
            .map(|i| PageDigest::from_content_id(content_id(seed, i)))
            .collect();
        DigestMemory { pages }
    }

    /// Creates an image directly from a digest list.
    pub fn from_digests(pages: Vec<PageDigest>) -> Self {
        DigestMemory { pages }
    }

    /// An immutable copy of the current state, e.g. to act as a checkpoint.
    pub fn snapshot(&self) -> DigestMemory {
        self.clone()
    }

    /// Borrows the underlying digest slice.
    pub fn as_slice(&self) -> &[PageDigest] {
        &self.pages
    }

    /// Consumes the image, returning the digest list.
    pub fn into_digests(self) -> Vec<PageDigest> {
        self.pages
    }

    /// Counts pages whose digest differs from `other` at the same index.
    ///
    /// # Panics
    ///
    /// Panics if the images have different sizes.
    pub fn pages_differing_from(&self, other: &DigestMemory) -> PageCount {
        assert_eq!(self.pages.len(), other.pages.len(), "size mismatch");
        let n = self
            .pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| a != b)
            .count();
        PageCount::new(n as u64)
    }
}

/// Derives the content ID for page `i` of an image seeded with `seed`.
///
/// The seed occupies the high bits so images with different seeds draw
/// from disjoint content namespaces (no accidental cross-VM duplicates).
fn content_id(seed: u64, i: u64) -> u64 {
    (seed << 40) ^ (i + 1)
}

impl MemoryImage for DigestMemory {
    fn page_count(&self) -> PageCount {
        PageCount::new(self.pages.len() as u64)
    }

    fn page_digest(&self, idx: PageIndex) -> PageDigest {
        self.pages[idx.as_usize()]
    }

    fn digests(&self) -> Vec<PageDigest> {
        self.pages.clone()
    }
}

impl MutableMemory for DigestMemory {
    fn write_page(&mut self, idx: PageIndex, content: PageContent<'_>) {
        self.pages[idx.as_usize()] = content.digest();
    }

    fn relocate_page(&mut self, src: PageIndex, dst: PageIndex) {
        self.pages[dst.as_usize()] = self.pages[src.as_usize()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero_pages() {
        let m = DigestMemory::zeroed(PageCount::new(8));
        assert!(m.as_slice().iter().all(|d| d.is_zero_page()));
    }

    #[test]
    fn uniform_content_is_reproducible() {
        let a = DigestMemory::with_uniform_content(Bytes::from_mib(1), 3).unwrap();
        let b = DigestMemory::with_uniform_content(Bytes::from_mib(1), 3).unwrap();
        assert_eq!(a, b);
        let c = DigestMemory::with_uniform_content(Bytes::from_mib(1), 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_content_rejects_bad_sizes() {
        assert!(DigestMemory::with_uniform_content(Bytes::ZERO, 1).is_err());
        assert!(DigestMemory::with_uniform_content(Bytes::new(4095), 1).is_err());
    }

    #[test]
    fn distinct_content_pages_are_distinct() {
        let m = DigestMemory::with_distinct_content(PageCount::new(1000), 9);
        let mut set = std::collections::HashSet::new();
        for d in m.as_slice() {
            assert!(set.insert(*d));
        }
    }

    #[test]
    fn different_seeds_share_no_content() {
        let a = DigestMemory::with_distinct_content(PageCount::new(500), 1);
        let b = DigestMemory::with_distinct_content(PageCount::new(500), 2);
        let sa: std::collections::HashSet<_> = a.as_slice().iter().collect();
        assert!(b.as_slice().iter().all(|d| !sa.contains(d)));
    }

    #[test]
    fn write_and_relocate() {
        let mut m = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let d0 = m.page_digest(PageIndex::new(0));
        m.relocate_page(PageIndex::new(0), PageIndex::new(3));
        assert_eq!(m.page_digest(PageIndex::new(3)), d0);
        m.write_page(PageIndex::new(0), PageContent::Zero);
        assert!(m.page_digest(PageIndex::new(0)).is_zero_page());
    }

    #[test]
    fn snapshot_is_independent() {
        let mut m = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let snap = m.snapshot();
        m.write_page(PageIndex::new(2), PageContent::Zero);
        assert_eq!(m.pages_differing_from(&snap), PageCount::new(1));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn diff_rejects_size_mismatch() {
        let a = DigestMemory::zeroed(PageCount::new(2));
        let b = DigestMemory::zeroed(PageCount::new(3));
        let _ = a.pages_differing_from(&b);
    }
}
