//! [`DirtyTracker`]: a dirty-page bitmap, as hardware dirty logging sees it.

use vecycle_types::{PageCount, PageIndex};

/// Tracks which pages were written since the tracker was last cleared.
///
/// Models KVM's dirty logging: the hypervisor write-protects pages, takes
/// a fault on first write, and accumulates a bitmap. Pre-copy migration
/// consumes the bitmap once per round via [`DirtyTracker::drain`].
///
/// # Examples
///
/// ```
/// use vecycle_mem::DirtyTracker;
/// use vecycle_types::{PageCount, PageIndex};
///
/// let mut t = DirtyTracker::new(PageCount::new(8));
/// t.mark(PageIndex::new(2));
/// t.mark(PageIndex::new(5));
/// t.mark(PageIndex::new(2)); // idempotent
/// assert_eq!(t.dirty_count(), PageCount::new(2));
/// let drained = t.drain();
/// assert_eq!(drained, vec![PageIndex::new(2), PageIndex::new(5)]);
/// assert_eq!(t.dirty_count(), PageCount::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct DirtyTracker {
    bits: Vec<u64>,
    pages: u64,
    dirty: u64,
}

impl DirtyTracker {
    /// Creates a tracker for `pages` pages, all clean.
    pub fn new(pages: PageCount) -> Self {
        let words = (pages.as_u64() as usize).div_ceil(64);
        DirtyTracker {
            bits: vec![0u64; words],
            pages: pages.as_u64(),
            dirty: 0,
        }
    }

    /// Number of pages this tracker covers.
    pub fn page_count(&self) -> PageCount {
        PageCount::new(self.pages)
    }

    /// Marks a page dirty. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn mark(&mut self, idx: PageIndex) {
        let i = idx.as_u64();
        assert!(i < self.pages, "page {i} out of bounds ({})", self.pages);
        let word = &mut self.bits[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.dirty += 1;
        }
    }

    /// True if the page is currently marked dirty.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn is_dirty(&self, idx: PageIndex) -> bool {
        let i = idx.as_u64();
        assert!(i < self.pages, "page {i} out of bounds ({})", self.pages);
        self.bits[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Number of pages currently dirty.
    pub fn dirty_count(&self) -> PageCount {
        PageCount::new(self.dirty)
    }

    /// Returns all dirty pages in index order and clears the tracker —
    /// the per-round harvest of pre-copy migration.
    pub fn drain(&mut self) -> Vec<PageIndex> {
        let out = self.dirty_pages();
        self.clear();
        out
    }

    /// Returns all dirty pages in index order without clearing.
    pub fn dirty_pages(&self) -> Vec<PageIndex> {
        let mut out = Vec::with_capacity(self.dirty as usize);
        for (w, &word) in self.bits.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as u64;
                out.push(PageIndex::new(w as u64 * 64 + bit));
                word &= word - 1;
            }
        }
        out
    }

    /// Clears all dirty bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.dirty = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tracker_is_clean() {
        let t = DirtyTracker::new(PageCount::new(100));
        assert_eq!(t.dirty_count(), PageCount::ZERO);
        assert!(t.dirty_pages().is_empty());
        assert!(!t.is_dirty(PageIndex::new(99)));
    }

    #[test]
    fn mark_is_idempotent() {
        let mut t = DirtyTracker::new(PageCount::new(10));
        t.mark(PageIndex::new(3));
        t.mark(PageIndex::new(3));
        assert_eq!(t.dirty_count(), PageCount::new(1));
    }

    #[test]
    fn drain_returns_sorted_and_clears() {
        let mut t = DirtyTracker::new(PageCount::new(200));
        for i in [199u64, 0, 64, 63, 65, 128] {
            t.mark(PageIndex::new(i));
        }
        let drained = t.drain();
        let expected: Vec<_> = [0u64, 63, 64, 65, 128, 199]
            .iter()
            .map(|&i| PageIndex::new(i))
            .collect();
        assert_eq!(drained, expected);
        assert_eq!(t.dirty_count(), PageCount::ZERO);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn word_boundary_pages() {
        let mut t = DirtyTracker::new(PageCount::new(65));
        t.mark(PageIndex::new(64));
        assert!(t.is_dirty(PageIndex::new(64)));
        assert!(!t.is_dirty(PageIndex::new(63)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn mark_out_of_bounds_panics() {
        let mut t = DirtyTracker::new(PageCount::new(64));
        t.mark(PageIndex::new(64));
    }

    #[test]
    fn dirty_pages_does_not_clear() {
        let mut t = DirtyTracker::new(PageCount::new(10));
        t.mark(PageIndex::new(1));
        assert_eq!(t.dirty_pages().len(), 1);
        assert_eq!(t.dirty_count(), PageCount::new(1));
    }
}
