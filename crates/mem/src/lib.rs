//! Guest memory models: page images, dirty tracking and workloads.
//!
//! The migration engine needs three things from a guest: the *content
//! digest* of every page (for content-based redundancy elimination), a
//! *dirty tracker* (for pre-copy rounds and Miyakodori-style reuse), and a
//! way for a *workload* to keep mutating memory while a migration runs.
//!
//! Two interchangeable memory representations are provided:
//!
//! * [`DigestMemory`] stores one 16-byte digest per page. It scales to the
//!   paper's 1–8 GiB guests (a 6 GiB guest needs ~24 MiB of digests) and
//!   is what the figure-level benchmarks use.
//! * [`ByteMemory`] stores real 4 KiB page bytes and hashes them with the
//!   real MD5. It is used by the end-to-end tests that check the
//!   destination reconstructs memory *byte-for-byte*.
//!
//! [`Guest`] composes a memory with a [`DirtyTracker`] and a
//! [`GenerationTable`] so every write is observed by both trackers, the
//! way KVM's dirty logging and Miyakodori's generation counters observe
//! writes in the real system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod byte_memory;
mod content;
mod digest_memory;
mod dirty;
mod generation;
mod guest;
pub mod workload;

pub use arena::{ArenaSlot, PageArena, PageBuf, SealedArena};
pub use byte_memory::ByteMemory;
pub use content::PageContent;
pub use digest_memory::DigestMemory;
pub use dirty::DirtyTracker;
pub use generation::{Generation, GenerationSnapshot, GenerationTable};
pub use guest::Guest;

use vecycle_types::{Bytes, PageCount, PageDigest, PageIndex};

/// Read access to a guest memory image.
///
/// Implementations must be *dense*: pages `0..page_count()` all exist.
///
/// `Sync` is a supertrait: an image is an immutable snapshot while it is
/// being read, and the migration engine's parallel page scan shares one
/// image across scoped worker threads.
pub trait MemoryImage: Sync {
    /// Number of pages in the image.
    fn page_count(&self) -> PageCount;

    /// The content digest of one page.
    ///
    /// # Panics
    ///
    /// Implementations panic if `idx` is out of bounds.
    fn page_digest(&self, idx: PageIndex) -> PageDigest;

    /// Total RAM represented by this image.
    fn ram_size(&self) -> Bytes {
        self.page_count().bytes()
    }

    /// Collects all page digests in index order.
    ///
    /// The default implementation calls [`MemoryImage::page_digest`] per
    /// page; implementations with contiguous storage override it.
    fn digests(&self) -> Vec<PageDigest> {
        (0..self.page_count().as_u64())
            .map(|i| self.page_digest(PageIndex::new(i)))
            .collect()
    }

    /// The raw bytes of one page, for byte-backed images.
    ///
    /// Digest-level images return `None`; the migration transcript then
    /// carries digests only.
    fn page_bytes(&self, idx: PageIndex) -> Option<&[u8]> {
        let _ = idx;
        None
    }
}

/// Write access to a guest memory image.
pub trait MutableMemory: MemoryImage {
    /// Overwrites one page with new content.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    fn write_page(&mut self, idx: PageIndex, content: PageContent<'_>);

    /// Copies the content of page `src` to page `dst`.
    ///
    /// This models the guest OS *relocating* data in physical memory —
    /// the case where dirty-page tracking overestimates the transfer set
    /// (Figure 3 / §4.3) because the destination frame looks dirty even
    /// though its content already exists in the checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    fn relocate_page(&mut self, src: PageIndex, dst: PageIndex);
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn default_digests_collects_in_order() {
        let mem = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        let via_trait: Vec<PageDigest> = MemoryImage::digests(&mem);
        let direct: Vec<PageDigest> = (0..4).map(|i| mem.page_digest(PageIndex::new(i))).collect();
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn ram_size_is_pages_times_page_size() {
        let mem = DigestMemory::with_distinct_content(PageCount::new(256), 1);
        assert_eq!(mem.ram_size(), Bytes::from_mib(1));
    }
}
