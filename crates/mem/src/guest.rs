//! [`Guest`]: a memory image observed by dirty and generation trackers.

use vecycle_types::{Bytes, PageCount, PageDigest, PageIndex};

use crate::{DirtyTracker, GenerationTable, MemoryImage, MutableMemory, PageContent};

/// A running guest: memory plus the trackers a hypervisor maintains.
///
/// Every write through [`Guest::write_page`] is seen by the dirty bitmap
/// (KVM dirty logging) *and* the generation table (Miyakodori), exactly as
/// both mechanisms would observe the same write in a real hypervisor. The
/// memory representation `M` is either [`crate::DigestMemory`] or
/// [`crate::ByteMemory`].
///
/// # Examples
///
/// ```
/// use vecycle_mem::{DigestMemory, Guest, MemoryImage, PageContent};
/// use vecycle_types::{PageCount, PageIndex};
///
/// let mem = DigestMemory::with_distinct_content(PageCount::new(8), 1);
/// let mut guest = Guest::new(mem);
/// guest.write_page(PageIndex::new(3), PageContent::ContentId(77));
/// assert_eq!(guest.dirty().dirty_count(), PageCount::new(1));
/// assert_eq!(guest.generations().generation(PageIndex::new(3)).as_u64(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Guest<M> {
    memory: M,
    dirty: DirtyTracker,
    generations: GenerationTable,
}

impl<M: MutableMemory> Guest<M> {
    /// Wraps a memory image with fresh (clean) trackers.
    pub fn new(memory: M) -> Self {
        let pages = memory.page_count();
        Guest {
            memory,
            dirty: DirtyTracker::new(pages),
            generations: GenerationTable::new(pages),
        }
    }

    /// The guest's memory image.
    pub fn memory(&self) -> &M {
        &self.memory
    }

    /// The dirty bitmap.
    pub fn dirty(&self) -> &DirtyTracker {
        &self.dirty
    }

    /// Mutable access to the dirty bitmap (the migration engine drains it
    /// once per pre-copy round).
    pub fn dirty_mut(&mut self) -> &mut DirtyTracker {
        &mut self.dirty
    }

    /// The generation table.
    pub fn generations(&self) -> &GenerationTable {
        &self.generations
    }

    /// Total RAM of the guest.
    pub fn ram_size(&self) -> Bytes {
        self.memory.ram_size()
    }

    /// Number of pages.
    pub fn page_count(&self) -> PageCount {
        self.memory.page_count()
    }

    /// Writes one page, updating both trackers.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn write_page(&mut self, idx: PageIndex, content: PageContent<'_>) {
        self.memory.write_page(idx, content);
        self.dirty.mark(idx);
        self.generations.bump(idx);
    }

    /// Copies page `src` onto page `dst`, updating trackers for `dst`.
    ///
    /// Relocation makes `dst` *look* dirty to both trackers even though
    /// its new content already exists elsewhere — the overestimation case
    /// content-based redundancy elimination catches and dirty tracking
    /// does not (Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn relocate_page(&mut self, src: PageIndex, dst: PageIndex) {
        self.memory.relocate_page(src, dst);
        self.dirty.mark(dst);
        self.generations.bump(dst);
    }

    /// Consumes the guest, returning the memory image.
    pub fn into_memory(self) -> M {
        self.memory
    }
}

impl<M: MemoryImage> MemoryImage for Guest<M> {
    fn page_count(&self) -> PageCount {
        self.memory.page_count()
    }

    fn page_digest(&self, idx: PageIndex) -> PageDigest {
        self.memory.page_digest(idx)
    }

    fn digests(&self) -> Vec<PageDigest> {
        self.memory.digests()
    }

    fn page_bytes(&self, idx: PageIndex) -> Option<&[u8]> {
        self.memory.page_bytes(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DigestMemory;

    fn guest(pages: u64) -> Guest<DigestMemory> {
        Guest::new(DigestMemory::with_distinct_content(
            PageCount::new(pages),
            1,
        ))
    }

    #[test]
    fn writes_update_both_trackers() {
        let mut g = guest(8);
        g.write_page(PageIndex::new(5), PageContent::Zero);
        assert!(g.dirty().is_dirty(PageIndex::new(5)));
        assert_eq!(g.generations().generation(PageIndex::new(5)).as_u64(), 1);
        assert!(!g.dirty().is_dirty(PageIndex::new(4)));
    }

    #[test]
    fn relocation_marks_destination_only() {
        let mut g = guest(8);
        g.relocate_page(PageIndex::new(1), PageIndex::new(6));
        assert!(g.dirty().is_dirty(PageIndex::new(6)));
        assert!(!g.dirty().is_dirty(PageIndex::new(1)));
        assert_eq!(
            g.page_digest(PageIndex::new(1)),
            g.page_digest(PageIndex::new(6))
        );
    }

    #[test]
    fn draining_dirty_does_not_touch_generations() {
        let mut g = guest(4);
        g.write_page(PageIndex::new(2), PageContent::ContentId(50));
        let drained = g.dirty_mut().drain();
        assert_eq!(drained, vec![PageIndex::new(2)]);
        assert_eq!(g.generations().generation(PageIndex::new(2)).as_u64(), 1);
    }

    #[test]
    fn guest_exposes_memory_image() {
        let g = guest(4);
        assert_eq!(g.page_count(), PageCount::new(4));
        assert_eq!(g.digests().len(), 4);
    }
}
