//! The [`PageContent`] write payload.

use vecycle_types::{PageDigest, PAGE_SIZE};

/// The content written into a page, in whichever representation the
/// memory image stores.
///
/// Workloads describe writes abstractly — "fresh content with ID 17",
/// "these literal bytes", "zeros" — and each memory representation
/// materializes them: [`crate::DigestMemory`] maps content IDs straight to
/// digests, while [`crate::ByteMemory`] expands them to deterministic
/// 4 KiB byte patterns and hashes those with real MD5. Crucially, the two
/// representations *agree*: writing the same `PageContent` to either
/// yields pages that compare equal by digest, so digest-level experiments
/// and byte-level tests exercise the same logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageContent<'a> {
    /// Literal page bytes; must be at most one page (shorter slices are
    /// zero-padded to the right).
    Bytes(&'a [u8]),
    /// Synthetic content identified by a 64-bit ID; the same ID always
    /// produces the same page content. ID 0 is the zero page.
    ContentId(u64),
    /// The all-zero page.
    Zero,
}

impl PageContent<'_> {
    /// Expands this content to a full 4 KiB page of bytes.
    ///
    /// # Panics
    ///
    /// Panics if a `Bytes` payload is longer than one page.
    pub fn materialize(&self) -> Vec<u8> {
        let mut out = vec![0u8; PAGE_SIZE as usize];
        self.write_into(&mut out);
        out
    }

    /// Expands this content in place into a page-sized buffer, avoiding
    /// the temporary allocation of [`PageContent::materialize`] — the
    /// destination merge writes tens of thousands of pages per restore.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not exactly one page, or if a `Bytes` payload
    /// is longer than one page.
    pub fn write_into(&self, dst: &mut [u8]) {
        let page = PAGE_SIZE as usize;
        assert_eq!(dst.len(), page, "write_into needs a page-sized buffer");
        match *self {
            PageContent::Bytes(b) => {
                assert!(b.len() <= page, "page payload too large: {}", b.len());
                dst[..b.len()].copy_from_slice(b);
                dst[b.len()..].fill(0);
            }
            PageContent::ContentId(0) | PageContent::Zero => dst.fill(0),
            PageContent::ContentId(id) => {
                // A xorshift-style stream keyed by the ID: cheap,
                // deterministic and collision-free across IDs because the
                // first 8 bytes are the ID itself.
                dst[..8].copy_from_slice(&id.to_le_bytes());
                let mut s = id | 1;
                for chunk in dst[8..].chunks_mut(8) {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let b = s.to_le_bytes();
                    chunk.copy_from_slice(&b[..chunk.len()]);
                }
            }
        }
    }

    /// The digest this content will have in a [`crate::DigestMemory`].
    ///
    /// For `Bytes` payloads this hashes the materialized page with real
    /// MD5; for content IDs it uses the injective ID-to-digest expansion.
    pub fn digest(&self) -> PageDigest {
        match *self {
            PageContent::Bytes(b) => vecycle_hash::page_digest(&{
                // Hash the padded page so short and padded writes agree.
                PageContent::Bytes(b).materialize()
            }),
            PageContent::ContentId(id) => PageDigest::from_content_id(id),
            PageContent::Zero => PageDigest::ZERO_PAGE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_id_zero_agree() {
        assert_eq!(PageContent::Zero.digest(), PageDigest::ZERO_PAGE);
        assert_eq!(PageContent::ContentId(0).digest(), PageDigest::ZERO_PAGE);
        assert_eq!(PageContent::Zero.materialize(), vec![0u8; 4096]);
    }

    #[test]
    fn materialize_is_deterministic_and_id_prefixed() {
        let a = PageContent::ContentId(42).materialize();
        let b = PageContent::ContentId(42).materialize();
        assert_eq!(a, b);
        assert_eq!(&a[..8], &42u64.to_le_bytes());
        assert_ne!(a, PageContent::ContentId(43).materialize());
    }

    #[test]
    fn bytes_are_padded() {
        let m = PageContent::Bytes(b"hello").materialize();
        assert_eq!(m.len(), 4096);
        assert_eq!(&m[..5], b"hello");
        assert!(m[5..].iter().all(|&b| b == 0));
    }

    /// `write_into` overwrites whatever the buffer held — including the
    /// zero-padding tail of a short write — matching `materialize`.
    #[test]
    fn write_into_matches_materialize_over_dirty_buffer() {
        for content in [
            PageContent::Bytes(b"short"),
            PageContent::ContentId(0),
            PageContent::ContentId(99),
            PageContent::Zero,
        ] {
            let mut buf = vec![0xffu8; 4096];
            content.write_into(&mut buf);
            assert_eq!(buf, content.materialize(), "{content:?}");
        }
    }

    #[test]
    #[should_panic(expected = "page-sized buffer")]
    fn write_into_rejects_wrong_size() {
        PageContent::Zero.write_into(&mut [0u8; 100]);
    }

    #[test]
    fn short_write_digest_matches_padded_write() {
        let short = PageContent::Bytes(b"hi").digest();
        let mut full = vec![0u8; 4096];
        full[..2].copy_from_slice(b"hi");
        assert_eq!(short, PageContent::Bytes(&full).digest());
    }

    #[test]
    #[should_panic(expected = "page payload too large")]
    fn oversized_bytes_panic() {
        let big = vec![1u8; 4097];
        let _ = PageContent::Bytes(&big).materialize();
    }

    #[test]
    fn empty_bytes_is_zero_page() {
        assert_eq!(PageContent::Bytes(&[]).digest(), PageDigest::ZERO_PAGE);
    }
}
