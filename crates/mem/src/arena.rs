//! Arena-backed page buffers for the transfer pipeline.
//!
//! The page scan used to box every full page it put on the simulated
//! wire — one heap allocation per 4 KiB page, tens of thousands per
//! migration. [`PageArena`] replaces that with one contiguous buffer
//! per scan shard: workers append page bytes as they classify, seal the
//! arena into an immutable [`SealedArena`], and hand out [`PageBuf`]s —
//! cheap reference-counted slices — to the transcript messages. The
//! messages own their bytes (they outlive the scan and the source
//! image), but all pages of a shard share a single allocation.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A reference into a [`SealedArena`], produced by [`PageArena::push`]
/// and resolved by [`SealedArena::slice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaSlot {
    start: usize,
    len: usize,
}

/// An append-only byte arena for page payloads.
///
/// # Examples
///
/// ```
/// use vecycle_mem::PageArena;
///
/// let mut arena = PageArena::new();
/// let a = arena.push(b"first page");
/// let b = arena.push(b"second");
/// let sealed = arena.seal();
/// assert_eq!(&*sealed.slice(a), b"first page");
/// assert_eq!(&*sealed.slice(b), b"second");
/// ```
#[derive(Debug, Default)]
pub struct PageArena {
    buf: Vec<u8>,
}

impl PageArena {
    /// An empty arena.
    pub fn new() -> Self {
        PageArena::default()
    }

    /// An empty arena preallocated for `bytes` bytes of payload.
    pub fn with_capacity(bytes: usize) -> Self {
        PageArena {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Appends a payload, returning the slot to resolve after sealing.
    pub fn push(&mut self, bytes: &[u8]) -> ArenaSlot {
        let start = self.buf.len();
        self.buf.extend_from_slice(bytes);
        ArenaSlot {
            start,
            len: bytes.len(),
        }
    }

    /// Bytes appended so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the arena; slots become resolvable.
    pub fn seal(self) -> SealedArena {
        SealedArena {
            data: Arc::from(self.buf),
        }
    }
}

/// An immutable, shareable arena; see [`PageArena`].
#[derive(Debug, Clone)]
pub struct SealedArena {
    data: Arc<[u8]>,
}

impl SealedArena {
    /// Resolves a slot returned by [`PageArena::push`] on the arena this
    /// was sealed from.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of bounds (a slot from a different
    /// arena).
    pub fn slice(&self, slot: ArenaSlot) -> PageBuf {
        assert!(
            slot.start + slot.len <= self.data.len(),
            "arena slot out of bounds"
        );
        PageBuf {
            data: Arc::clone(&self.data),
            start: slot.start,
            len: slot.len,
        }
    }
}

/// An owned, cheaply clonable view of page bytes.
///
/// Behaves like `Box<[u8]>` for readers (`Deref<Target = [u8]>`,
/// content-based equality) but clones by bumping a reference count, and
/// many `PageBuf`s typically share one arena allocation.
///
/// # Examples
///
/// ```
/// use vecycle_mem::PageBuf;
///
/// let buf = PageBuf::copy_from(b"page bytes");
/// assert_eq!(&*buf, b"page bytes");
/// assert_eq!(buf, PageBuf::copy_from(b"page bytes")); // content equality
/// ```
#[derive(Clone)]
pub struct PageBuf {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl PageBuf {
    /// A standalone buffer holding a copy of `bytes` — for callers
    /// without an arena (tests, single-page paths).
    pub fn copy_from(bytes: &[u8]) -> Self {
        PageBuf {
            data: Arc::from(bytes),
            start: 0,
            len: bytes.len(),
        }
    }
}

impl Deref for PageBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for PageBuf {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for PageBuf {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for PageBuf {}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as the byte slice, like Box<[u8]> would.
        fmt::Debug::fmt(&**self, f)
    }
}

impl From<Vec<u8>> for PageBuf {
    fn from(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        PageBuf {
            data: Arc::from(bytes),
            start: 0,
            len,
        }
    }
}

impl From<Box<[u8]>> for PageBuf {
    fn from(bytes: Box<[u8]>) -> Self {
        let len = bytes.len();
        PageBuf {
            data: Arc::from(bytes),
            start: 0,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_resolve_to_their_bytes() {
        let mut arena = PageArena::with_capacity(64);
        let slots: Vec<ArenaSlot> = (0u8..10).map(|i| arena.push(&[i; 16])).collect();
        assert_eq!(arena.len(), 160);
        let sealed = arena.seal();
        for (i, &slot) in slots.iter().enumerate() {
            assert_eq!(&*sealed.slice(slot), &[i as u8; 16]);
        }
    }

    #[test]
    fn bufs_share_one_allocation() {
        let mut arena = PageArena::new();
        let a = arena.push(b"aaaa");
        let b = arena.push(b"bbbb");
        let sealed = arena.seal();
        let buf_a = sealed.slice(a);
        let buf_b = sealed.slice(b);
        assert!(Arc::ptr_eq(&buf_a.data, &buf_b.data));
        drop(sealed);
        // Slices keep the arena alive.
        assert_eq!(&*buf_a, b"aaaa");
        assert_eq!(&*buf_b, b"bbbb");
    }

    #[test]
    fn equality_is_by_content_not_identity() {
        let standalone = PageBuf::copy_from(b"same");
        let mut arena = PageArena::new();
        let slot = arena.push(b"same");
        let from_arena = arena.seal().slice(slot);
        assert_eq!(standalone, from_arena);
        assert_ne!(standalone, PageBuf::copy_from(b"diff"));
    }

    #[test]
    fn empty_arena_and_empty_slices() {
        let arena = PageArena::new();
        assert!(arena.is_empty());
        let sealed = arena.seal();
        let empty = sealed.slice(ArenaSlot { start: 0, len: 0 });
        assert_eq!(&*empty, b"");
    }

    #[test]
    #[should_panic(expected = "arena slot out of bounds")]
    fn foreign_slot_panics() {
        let mut big = PageArena::new();
        big.push(&[0u8; 100]);
        let slot = big.push(&[1u8; 100]);
        let mut small = PageArena::new();
        small.push(&[2u8; 8]);
        let _ = small.seal().slice(slot);
    }

    #[test]
    fn conversions_preserve_bytes() {
        let v: PageBuf = vec![1u8, 2, 3].into();
        let b: PageBuf = vec![1u8, 2, 3].into_boxed_slice().into();
        assert_eq!(v, b);
        assert_eq!(v.as_ref(), &[1, 2, 3]);
        assert_eq!(format!("{v:?}"), "[1, 2, 3]");
    }
}
