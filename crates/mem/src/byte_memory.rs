//! [`ByteMemory`]: a guest memory image backed by real page bytes.

use vecycle_types::{PageCount, PageDigest, PageIndex, PAGE_SIZE};

use crate::{MemoryImage, MutableMemory, PageContent};

/// A guest memory image holding actual 4 KiB page contents.
///
/// Digests are computed with real MD5 (via [`vecycle_hash::page_digest`])
/// and cached per page; writes invalidate the cache lazily. This image is
/// meant for modest sizes — integration tests use tens of MiB to prove the
/// destination merge logic (Listing 1 of the paper) reconstructs memory
/// byte-for-byte.
///
/// # Examples
///
/// ```
/// use vecycle_mem::{ByteMemory, MemoryImage, MutableMemory, PageContent};
/// use vecycle_types::{PageCount, PageIndex};
///
/// let mut vm = ByteMemory::zeroed(PageCount::new(16));
/// vm.write_page(PageIndex::new(3), PageContent::Bytes(b"guest data"));
/// assert_eq!(&vm.read_page(PageIndex::new(3))[..10], b"guest data");
/// assert!(!vm.page_digest(PageIndex::new(3)).is_zero_page());
/// ```
#[derive(Debug, Clone)]
pub struct ByteMemory {
    bytes: Vec<u8>,
    digest_cache: Vec<Option<PageDigest>>,
}

impl ByteMemory {
    /// Creates an all-zero memory of `pages` pages.
    pub fn zeroed(pages: PageCount) -> Self {
        let n = pages.as_usize();
        ByteMemory {
            bytes: vec![0u8; n * PAGE_SIZE as usize],
            digest_cache: vec![Some(PageDigest::ZERO_PAGE); n],
        }
    }

    /// Creates a memory where every page holds distinct deterministic
    /// content derived from `seed`.
    pub fn with_distinct_content(pages: PageCount, seed: u64) -> Self {
        let mut mem = ByteMemory::zeroed(pages);
        for i in 0..pages.as_u64() {
            mem.write_page(
                PageIndex::new(i),
                PageContent::ContentId((seed << 40) ^ (i + 1)),
            );
        }
        mem
    }

    /// Reads one page.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn read_page(&self, idx: PageIndex) -> &[u8] {
        let start = idx.as_usize() * PAGE_SIZE as usize;
        &self.bytes[start..start + PAGE_SIZE as usize]
    }

    /// An immutable deep copy of the current state.
    pub fn snapshot(&self) -> ByteMemory {
        self.clone()
    }

    /// True if every page of `self` and `other` is byte-identical.
    pub fn content_equals(&self, other: &ByteMemory) -> bool {
        self.bytes == other.bytes
    }

    fn page_range(&self, idx: PageIndex) -> std::ops::Range<usize> {
        let start = idx.as_usize() * PAGE_SIZE as usize;
        start..start + PAGE_SIZE as usize
    }
}

impl MemoryImage for ByteMemory {
    fn page_count(&self) -> PageCount {
        PageCount::new(self.digest_cache.len() as u64)
    }

    fn page_digest(&self, idx: PageIndex) -> PageDigest {
        if let Some(d) = self.digest_cache[idx.as_usize()] {
            return d;
        }
        vecycle_hash::page_digest(self.read_page(idx))
    }

    fn page_bytes(&self, idx: PageIndex) -> Option<&[u8]> {
        Some(self.read_page(idx))
    }

    fn digests(&self) -> Vec<PageDigest> {
        // Serve cached digests directly; batch-hash the rest through the
        // multi-lane front-end instead of one scalar MD5 per page.
        let mut out: Vec<PageDigest> = Vec::with_capacity(self.digest_cache.len());
        let mut missing: Vec<usize> = Vec::new();
        for (i, cached) in self.digest_cache.iter().enumerate() {
            match cached {
                Some(d) => out.push(*d),
                None => {
                    out.push(PageDigest::ZERO_PAGE);
                    missing.push(i);
                }
            }
        }
        if !missing.is_empty() {
            let views: Vec<&[u8]> = missing
                .iter()
                .map(|&i| self.read_page(PageIndex::new(i as u64)))
                .collect();
            for (k, d) in vecycle_hash::digest_pages(&views).into_iter().enumerate() {
                out[missing[k]] = d;
            }
        }
        out
    }
}

impl MutableMemory for ByteMemory {
    fn write_page(&mut self, idx: PageIndex, content: PageContent<'_>) {
        let range = self.page_range(idx);
        match content {
            PageContent::Zero => {
                self.bytes[range].fill(0);
                self.digest_cache[idx.as_usize()] = Some(PageDigest::ZERO_PAGE);
            }
            other => {
                other.write_into(&mut self.bytes[range.clone()]);
                // Recompute eagerly: callers interleave reads and writes
                // and the hash cost is what ByteMemory exists to pay.
                self.digest_cache[idx.as_usize()] =
                    Some(vecycle_hash::page_digest(&self.bytes[range]));
            }
        }
    }

    fn relocate_page(&mut self, src: PageIndex, dst: PageIndex) {
        let src_range = self.page_range(src);
        let dst_start = self.page_range(dst).start;
        self.bytes.copy_within(src_range, dst_start);
        self.digest_cache[dst.as_usize()] = self.digest_cache[src.as_usize()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_pages_have_zero_digest() {
        let m = ByteMemory::zeroed(PageCount::new(4));
        for i in 0..4 {
            assert!(m.page_digest(PageIndex::new(i)).is_zero_page());
        }
    }

    #[test]
    fn digest_matches_real_md5() {
        let mut m = ByteMemory::zeroed(PageCount::new(2));
        m.write_page(PageIndex::new(1), PageContent::Bytes(b"abc"));
        let mut page = vec![0u8; PAGE_SIZE as usize];
        page[..3].copy_from_slice(b"abc");
        assert_eq!(
            m.page_digest(PageIndex::new(1)),
            vecycle_hash::page_digest(&page)
        );
    }

    #[test]
    fn digest_agrees_with_digest_memory_for_content_ids() {
        use crate::DigestMemory;
        let mut bytes = ByteMemory::zeroed(PageCount::new(3));
        let mut digests = DigestMemory::zeroed(PageCount::new(3));
        for i in 0..3u64 {
            bytes.write_page(PageIndex::new(i), PageContent::ContentId(100 + i));
            digests.write_page(PageIndex::new(i), PageContent::ContentId(100 + i));
        }
        // The two representations *classify* pages identically: same
        // content ID -> same digest within each representation. They use
        // different digest functions internally (MD5 vs ID expansion), so
        // what must agree is equality structure, not raw digest values.
        for i in 0..3u64 {
            for j in 0..3u64 {
                let idx_i = PageIndex::new(i);
                let idx_j = PageIndex::new(j);
                assert_eq!(
                    bytes.page_digest(idx_i) == bytes.page_digest(idx_j),
                    digests.page_digest(idx_i) == digests.page_digest(idx_j),
                );
            }
        }
    }

    /// The batched `digests()` override agrees with the per-page walk,
    /// including pages whose cache entry has been invalidated (those go
    /// through the multi-lane batch hash).
    #[test]
    fn digests_override_matches_per_page_walk() {
        let mut m = ByteMemory::with_distinct_content(PageCount::new(12), 3);
        m.write_page(PageIndex::new(4), PageContent::Zero);
        for i in [1usize, 4, 7] {
            m.digest_cache[i] = None;
        }
        let batched = MemoryImage::digests(&m);
        let per_page: Vec<_> = (0..12).map(|i| m.page_digest(PageIndex::new(i))).collect();
        assert_eq!(batched, per_page);
    }

    #[test]
    fn relocate_copies_bytes_and_digest() {
        let mut m = ByteMemory::with_distinct_content(PageCount::new(4), 5);
        let src = PageIndex::new(1);
        let dst = PageIndex::new(3);
        m.relocate_page(src, dst);
        assert_eq!(m.read_page(src), m.read_page(dst));
        assert_eq!(m.page_digest(src), m.page_digest(dst));
    }

    #[test]
    fn content_equals_detects_divergence() {
        let a = ByteMemory::with_distinct_content(PageCount::new(4), 5);
        let mut b = a.snapshot();
        assert!(a.content_equals(&b));
        b.write_page(PageIndex::new(0), PageContent::Zero);
        assert!(!a.content_equals(&b));
    }
}
