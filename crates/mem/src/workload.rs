//! Guest workloads: processes that mutate memory over (simulated) time.
//!
//! The paper's empirical section uses three in-VM behaviours: an *idle*
//! guest with only background daemons (§4.4), a *ramdisk* writer updating
//! a controlled percentage of memory (§4.5), and implicit always-busy
//! guests like the web crawlers. Each is a [`GuestWorkload`] here, driven
//! by the migration engine between pre-copy rounds and by scenario
//! harnesses between migrations.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use vecycle_types::{PageIndex, Ratio, SimDuration};

use crate::{Guest, MutableMemory, PageContent};

/// A process inside the guest that writes memory as time passes.
pub trait GuestWorkload<M: MutableMemory> {
    /// Advances the workload by `dur` of guest time, performing whatever
    /// writes it would perform in that window.
    fn advance(&mut self, guest: &mut Guest<M>, dur: SimDuration);
}

/// A workload that writes nothing — the theoretical best case.
#[derive(Debug, Clone, Copy, Default)]
pub struct SilentWorkload;

impl<M: MutableMemory> GuestWorkload<M> for SilentWorkload {
    fn advance(&mut self, _guest: &mut Guest<M>, _dur: SimDuration) {}
}

/// An idle guest: background daemons touch a few pages per second.
///
/// §4.4's "best case" guest runs Ubuntu with background daemons only;
/// memory updates are rare but not zero.
#[derive(Debug, Clone)]
pub struct IdleWorkload {
    rng: ChaCha8Rng,
    pages_per_sec: f64,
    next_content: u64,
    carry: f64,
}

impl IdleWorkload {
    /// Creates an idle workload writing `pages_per_sec` random pages per
    /// second of guest time.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_sec` is negative or not finite.
    pub fn new(seed: u64, pages_per_sec: f64) -> Self {
        assert!(
            pages_per_sec.is_finite() && pages_per_sec >= 0.0,
            "invalid rate: {pages_per_sec}"
        );
        IdleWorkload {
            rng: ChaCha8Rng::seed_from_u64(seed),
            pages_per_sec,
            // High bit set: idle-daemon content never collides with the
            // image-seed namespace used by DigestMemory constructors.
            next_content: 1 << 63,
            carry: 0.0,
        }
    }
}

impl<M: MutableMemory> GuestWorkload<M> for IdleWorkload {
    fn advance(&mut self, guest: &mut Guest<M>, dur: SimDuration) {
        let pages = guest.page_count().as_u64();
        if pages == 0 {
            return;
        }
        let want = self.pages_per_sec * dur.as_secs_f64() + self.carry;
        let whole = want.floor();
        self.carry = want - whole;
        for _ in 0..whole as u64 {
            let idx = PageIndex::new(self.rng.gen_range(0..pages));
            let id = self.next_content;
            self.next_content += 1;
            guest.write_page(idx, PageContent::ContentId(id));
        }
    }
}

/// The §4.5 controlled-update workload: a ramdisk occupying a fixed
/// fraction of guest memory, laid out contiguously, with a method to
/// rewrite a chosen percentage of it with fresh random data.
///
/// # Examples
///
/// ```
/// use vecycle_mem::{workload::RamdiskWorkload, DigestMemory, Guest};
/// use vecycle_types::{PageCount, Ratio};
///
/// let mem = DigestMemory::zeroed(PageCount::new(1000));
/// let mut guest = Guest::new(mem);
/// let mut ramdisk = RamdiskWorkload::fill(&mut guest, Ratio::new(0.9), 42);
/// let snapshot = guest.memory().snapshot();
/// ramdisk.update_fraction(&mut guest, Ratio::new(0.25));
/// let changed = guest.memory().pages_differing_from(&snapshot);
/// // 25% of the 900-page ramdisk was rewritten.
/// assert_eq!(changed, PageCount::new(225));
/// ```
#[derive(Debug, Clone)]
pub struct RamdiskWorkload {
    first_page: u64,
    page_span: u64,
    rng: ChaCha8Rng,
    next_content: u64,
}

impl RamdiskWorkload {
    /// Allocates a ramdisk covering `fraction` of the guest's memory and
    /// fills it sequentially with fresh random content, mirroring the
    /// paper's setup (a single large file filling 90 % of RAM).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn fill<M: MutableMemory>(guest: &mut Guest<M>, fraction: Ratio, seed: u64) -> Self {
        assert!(fraction.is_fraction(), "fraction out of range: {fraction}");
        let pages = guest.page_count().as_u64();
        let span = (pages as f64 * fraction.as_f64()).floor() as u64;
        let mut wl = RamdiskWorkload {
            first_page: 0,
            page_span: span,
            rng: ChaCha8Rng::seed_from_u64(seed),
            next_content: (seed | 1) << 32 | (1 << 63),
        };
        for i in 0..span {
            let id = wl.next_content;
            wl.next_content += 1;
            guest.write_page(PageIndex::new(i), PageContent::ContentId(id));
        }
        wl
    }

    /// Number of pages the ramdisk occupies.
    pub fn page_span(&self) -> u64 {
        self.page_span
    }

    /// Rewrites `fraction` of the ramdisk with fresh content.
    ///
    /// Block selection is random without replacement (a permutation of
    /// 64-page blocks), matching "update select blocks of this single
    /// large file" in §4.5.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn update_fraction<M: MutableMemory>(&mut self, guest: &mut Guest<M>, fraction: Ratio) {
        assert!(fraction.is_fraction(), "fraction out of range: {fraction}");
        let target = (self.page_span as f64 * fraction.as_f64()).round() as u64;
        const BLOCK: u64 = 64;
        let blocks = self.page_span.div_ceil(BLOCK);
        let mut order: Vec<u64> = (0..blocks).collect();
        // Fisher-Yates over the block order.
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut written = 0u64;
        'outer: for block in order {
            let start = block * BLOCK;
            let end = (start + BLOCK).min(self.page_span);
            for p in start..end {
                if written == target {
                    break 'outer;
                }
                let id = self.next_content;
                self.next_content += 1;
                guest.write_page(
                    PageIndex::new(self.first_page + p),
                    PageContent::ContentId(id),
                );
                written += 1;
            }
        }
    }
}

/// A sequential scanner: rewrites pages front-to-back at a fixed rate,
/// wrapping around — the access pattern of a crawler or bulk loader
/// whose buffer cycles through memory. Unlike [`IdleWorkload`]'s random
/// writes, a scan concentrates dirtying in a moving window, which makes
/// pre-copy rounds chase a "wavefront".
#[derive(Debug, Clone)]
pub struct ScanWorkload {
    cursor: u64,
    pages_per_sec: f64,
    next_content: u64,
    carry: f64,
}

impl ScanWorkload {
    /// Creates a scanner writing `pages_per_sec` sequential pages per
    /// second of guest time.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_sec` is negative or not finite.
    pub fn new(seed: u64, pages_per_sec: f64) -> Self {
        assert!(
            pages_per_sec.is_finite() && pages_per_sec >= 0.0,
            "invalid rate: {pages_per_sec}"
        );
        ScanWorkload {
            cursor: 0,
            pages_per_sec,
            next_content: (seed | 1) << 24 | (1 << 62),
            carry: 0.0,
        }
    }

    /// The next page the scan will write.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

impl<M: MutableMemory> GuestWorkload<M> for ScanWorkload {
    fn advance(&mut self, guest: &mut Guest<M>, dur: SimDuration) {
        let pages = guest.page_count().as_u64();
        if pages == 0 {
            return;
        }
        let want = self.pages_per_sec * dur.as_secs_f64() + self.carry;
        let whole = want.floor();
        self.carry = want - whole;
        for _ in 0..whole as u64 {
            let id = self.next_content;
            self.next_content += 1;
            guest.write_page(PageIndex::new(self.cursor), PageContent::ContentId(id));
            self.cursor = (self.cursor + 1) % pages;
        }
    }
}

/// Runs several workloads side by side — e.g. a scanner plus background
/// daemons, the §2.3 crawler VMs' behaviour.
#[derive(Default)]
pub struct CompositeWorkload<M> {
    parts: Vec<Box<dyn GuestWorkload<M> + Send>>,
}

impl<M> std::fmt::Debug for CompositeWorkload<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeWorkload")
            .field("parts", &self.parts.len())
            .finish()
    }
}

impl<M: MutableMemory> CompositeWorkload<M> {
    /// Creates an empty composite.
    pub fn new() -> Self {
        CompositeWorkload { parts: Vec::new() }
    }

    /// Adds a component workload.
    #[must_use]
    pub fn with(mut self, workload: impl GuestWorkload<M> + Send + 'static) -> Self {
        self.parts.push(Box::new(workload));
        self
    }

    /// Number of component workloads.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if no components were added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl<M: MutableMemory> GuestWorkload<M> for CompositeWorkload<M> {
    fn advance(&mut self, guest: &mut Guest<M>, dur: SimDuration) {
        for part in &mut self.parts {
            part.advance(guest, dur);
        }
    }
}

/// A workload that *relocates* existing content between frames without
/// creating new content — the adversarial case for dirty tracking.
#[derive(Debug, Clone)]
pub struct RelocationWorkload {
    rng: ChaCha8Rng,
    moves_per_sec: f64,
    carry: f64,
}

impl RelocationWorkload {
    /// Creates a workload performing `moves_per_sec` page copies per
    /// second of guest time.
    ///
    /// # Panics
    ///
    /// Panics if `moves_per_sec` is negative or not finite.
    pub fn new(seed: u64, moves_per_sec: f64) -> Self {
        assert!(
            moves_per_sec.is_finite() && moves_per_sec >= 0.0,
            "invalid rate: {moves_per_sec}"
        );
        RelocationWorkload {
            rng: ChaCha8Rng::seed_from_u64(seed),
            moves_per_sec,
            carry: 0.0,
        }
    }
}

impl<M: MutableMemory> GuestWorkload<M> for RelocationWorkload {
    fn advance(&mut self, guest: &mut Guest<M>, dur: SimDuration) {
        let pages = guest.page_count().as_u64();
        if pages < 2 {
            return;
        }
        let want = self.moves_per_sec * dur.as_secs_f64() + self.carry;
        let whole = want.floor();
        self.carry = want - whole;
        for _ in 0..whole as u64 {
            let src = PageIndex::new(self.rng.gen_range(0..pages));
            let dst = PageIndex::new(self.rng.gen_range(0..pages));
            if src != dst {
                guest.relocate_page(src, dst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DigestMemory;
    use vecycle_types::PageCount;

    fn guest(pages: u64) -> Guest<DigestMemory> {
        Guest::new(DigestMemory::zeroed(PageCount::new(pages)))
    }

    #[test]
    fn silent_workload_writes_nothing() {
        let mut g = guest(100);
        SilentWorkload.advance(&mut g, SimDuration::from_hours(1));
        assert_eq!(g.dirty().dirty_count(), PageCount::ZERO);
    }

    #[test]
    fn idle_workload_rate_is_respected() {
        let mut g = guest(10_000);
        let mut wl = IdleWorkload::new(1, 5.0);
        wl.advance(&mut g, SimDuration::from_secs(100));
        // 500 writes, possibly fewer distinct pages due to collisions.
        let dirty = g.dirty().dirty_count().as_u64();
        assert!(dirty > 400 && dirty <= 500, "dirty = {dirty}");
    }

    #[test]
    fn idle_workload_carries_fractional_pages() {
        let mut g = guest(100);
        let mut wl = IdleWorkload::new(2, 0.5);
        // 0.5 pages/s for 1 s twice = 1 page total.
        wl.advance(&mut g, SimDuration::from_secs(1));
        wl.advance(&mut g, SimDuration::from_secs(1));
        assert_eq!(g.dirty().dirty_count(), PageCount::new(1));
    }

    #[test]
    fn ramdisk_fill_covers_requested_fraction() {
        let mut g = guest(1000);
        let wl = RamdiskWorkload::fill(&mut g, Ratio::new(0.9), 7);
        assert_eq!(wl.page_span(), 900);
        assert_eq!(g.dirty().dirty_count(), PageCount::new(900));
    }

    #[test]
    fn ramdisk_update_percentages_are_exact() {
        for pct in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut g = guest(1000);
            let mut wl = RamdiskWorkload::fill(&mut g, Ratio::new(0.9), 7);
            let snap = g.memory().snapshot();
            wl.update_fraction(&mut g, Ratio::new(pct));
            let changed = g.memory().pages_differing_from(&snap).as_u64();
            assert_eq!(changed, (900.0 * pct).round() as u64, "pct {pct}");
        }
    }

    #[test]
    fn ramdisk_updates_stay_inside_ramdisk() {
        let mut g = guest(1000);
        let mut wl = RamdiskWorkload::fill(&mut g, Ratio::new(0.5), 7);
        g.dirty_mut().clear();
        wl.update_fraction(&mut g, Ratio::ONE);
        for idx in g.dirty().dirty_pages() {
            assert!(idx.as_u64() < 500);
        }
    }

    #[test]
    fn scan_workload_writes_sequentially_and_wraps() {
        let mut g = guest(100);
        let mut wl = ScanWorkload::new(1, 10.0);
        wl.advance(&mut g, SimDuration::from_secs(5));
        // 50 writes: pages 0..50 dirty, cursor at 50.
        assert_eq!(g.dirty().dirty_count(), PageCount::new(50));
        assert_eq!(wl.cursor(), 50);
        assert!(g.dirty().is_dirty(PageIndex::new(0)));
        assert!(!g.dirty().is_dirty(PageIndex::new(50)));
        // Another 60 writes wrap around to page 10.
        wl.advance(&mut g, SimDuration::from_secs(6));
        assert_eq!(wl.cursor(), 10);
        assert_eq!(g.dirty().dirty_count(), PageCount::new(100));
    }

    #[test]
    fn scan_writes_always_fresh_content() {
        let mut g = guest(10);
        let snap = g.memory().snapshot();
        let mut wl = ScanWorkload::new(2, 10.0);
        wl.advance(&mut g, SimDuration::from_secs(3)); // 3 full cycles
        assert_eq!(g.memory().pages_differing_from(&snap), PageCount::new(10));
    }

    #[test]
    fn composite_runs_all_parts() {
        let mut g = guest(1000);
        let mut wl = CompositeWorkload::new()
            .with(IdleWorkload::new(3, 2.0))
            .with(ScanWorkload::new(4, 3.0));
        assert_eq!(wl.len(), 2);
        wl.advance(&mut g, SimDuration::from_secs(10));
        // 20 random + 30 sequential writes (some may collide).
        let dirty = g.dirty().dirty_count().as_u64();
        assert!(dirty > 40 && dirty <= 50, "dirty = {dirty}");
    }

    #[test]
    fn empty_composite_is_silent() {
        let mut g = guest(10);
        let mut wl: CompositeWorkload<DigestMemory> = CompositeWorkload::new();
        assert!(wl.is_empty());
        wl.advance(&mut g, SimDuration::from_hours(1));
        assert_eq!(g.dirty().dirty_count(), PageCount::ZERO);
    }

    #[test]
    fn relocation_preserves_content_set() {
        use crate::MemoryImage;
        let mem = DigestMemory::with_distinct_content(PageCount::new(100), 3);
        let before: std::collections::HashSet<_> = mem.digests().into_iter().collect();
        let mut g = Guest::new(mem);
        let mut wl = RelocationWorkload::new(4, 10.0);
        wl.advance(&mut g, SimDuration::from_secs(5));
        assert!(g.dirty().dirty_count().as_u64() > 0);
        // Every digest after relocation already existed before.
        for d in g.digests() {
            assert!(before.contains(&d));
        }
    }
}
