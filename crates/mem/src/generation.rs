//! [`GenerationTable`]: Miyakodori-style per-page generation counters.

use vecycle_types::{PageCount, PageIndex};

/// A page's write-generation number.
///
/// Incremented every time the page is written after a migration. Two
/// observations of the same page with equal generations mean the page was
/// not written in between — the reuse criterion of Miyakodori (Akiyama et
/// al., IEEE CLOUD 2012), the dirty-tracking alternative the paper
/// compares against in §4.3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Generation(u64);

impl Generation {
    /// The initial generation of an untouched page.
    pub const INITIAL: Generation = Generation(0);

    /// The raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The next generation.
    #[must_use]
    pub const fn next(self) -> Generation {
        Generation(self.0 + 1)
    }
}

/// Per-page generation counters for a whole guest.
///
/// # Examples
///
/// ```
/// use vecycle_mem::GenerationTable;
/// use vecycle_types::{PageCount, PageIndex};
///
/// let mut t = GenerationTable::new(PageCount::new(4));
/// let snap = t.snapshot();
/// t.bump(PageIndex::new(2));
/// // Pages 0,1,3 kept their generation: Miyakodori would reuse them.
/// assert_eq!(t.unchanged_since(&snap).len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationTable {
    generations: Vec<Generation>,
}

impl GenerationTable {
    /// Creates a table with all pages at the initial generation.
    pub fn new(pages: PageCount) -> Self {
        GenerationTable {
            generations: vec![Generation::INITIAL; pages.as_usize()],
        }
    }

    /// Number of pages covered.
    pub fn page_count(&self) -> PageCount {
        PageCount::new(self.generations.len() as u64)
    }

    /// The generation of one page.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn generation(&self, idx: PageIndex) -> Generation {
        self.generations[idx.as_usize()]
    }

    /// Increments a page's generation (called on every guest write).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bump(&mut self, idx: PageIndex) {
        let g = &mut self.generations[idx.as_usize()];
        *g = g.next();
    }

    /// Captures the generation vector, as Miyakodori stores alongside a
    /// checkpoint on an outgoing migration.
    pub fn snapshot(&self) -> GenerationSnapshot {
        GenerationSnapshot {
            generations: self.generations.clone(),
        }
    }

    /// Pages whose generation is unchanged since `snap` — the pages
    /// Miyakodori skips on the next incoming migration.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot covers a different number of pages.
    pub fn unchanged_since(&self, snap: &GenerationSnapshot) -> Vec<PageIndex> {
        assert_eq!(
            self.generations.len(),
            snap.generations.len(),
            "snapshot size mismatch"
        );
        self.generations
            .iter()
            .zip(&snap.generations)
            .enumerate()
            .filter(|(_, (now, then))| now == then)
            .map(|(i, _)| PageIndex::new(i as u64))
            .collect()
    }
}

/// An immutable capture of a [`GenerationTable`] at checkpoint time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationSnapshot {
    generations: Vec<Generation>,
}

impl GenerationSnapshot {
    /// Number of pages covered.
    pub fn page_count(&self) -> PageCount {
        PageCount::new(self.generations.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_all_initial() {
        let t = GenerationTable::new(PageCount::new(3));
        for i in 0..3 {
            assert_eq!(t.generation(PageIndex::new(i)), Generation::INITIAL);
        }
    }

    #[test]
    fn bump_increments_only_target() {
        let mut t = GenerationTable::new(PageCount::new(3));
        t.bump(PageIndex::new(1));
        t.bump(PageIndex::new(1));
        assert_eq!(t.generation(PageIndex::new(1)).as_u64(), 2);
        assert_eq!(t.generation(PageIndex::new(0)).as_u64(), 0);
    }

    #[test]
    fn unchanged_since_detects_writes() {
        let mut t = GenerationTable::new(PageCount::new(5));
        let snap = t.snapshot();
        t.bump(PageIndex::new(0));
        t.bump(PageIndex::new(4));
        let unchanged = t.unchanged_since(&snap);
        assert_eq!(
            unchanged,
            vec![PageIndex::new(1), PageIndex::new(2), PageIndex::new(3)]
        );
    }

    #[test]
    fn rewrite_of_same_content_still_counts_as_changed() {
        // The core Miyakodori weakness: generation counters cannot tell
        // that a write restored identical content.
        let mut t = GenerationTable::new(PageCount::new(1));
        let snap = t.snapshot();
        t.bump(PageIndex::new(0));
        assert!(t.unchanged_since(&snap).is_empty());
    }

    #[test]
    #[should_panic(expected = "snapshot size mismatch")]
    fn mismatched_snapshot_panics() {
        let t = GenerationTable::new(PageCount::new(2));
        let snap = GenerationTable::new(PageCount::new(3)).snapshot();
        let _ = t.unchanged_since(&snap);
    }
}
