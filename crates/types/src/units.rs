//! Quantity newtypes: bytes, pages, rates and ratios.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// The page size used throughout the simulation, in bytes.
///
/// The paper (and x86) uses 4 KiB pages; all checksums, transfer units and
/// checkpoint records are per 4 KiB page.
pub const PAGE_SIZE: u64 = 4096;

/// A quantity of bytes.
///
/// # Examples
///
/// ```
/// use vecycle_types::Bytes;
///
/// let a = Bytes::from_mib(1);
/// assert_eq!(a.as_u64(), 1024 * 1024);
/// assert_eq!(a + a, Bytes::from_mib(2));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte quantity from a raw count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a byte quantity from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte quantity from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a byte quantity from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Creates a byte quantity covering `pages` whole pages.
    pub const fn from_pages(pages: u64) -> Self {
        Bytes(pages * PAGE_SIZE)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as a float, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// This quantity expressed in mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// This quantity expressed in gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of whole pages needed to hold this many bytes (rounds up).
    pub fn pages_ceil(self) -> PageCount {
        PageCount::new(self.0.div_ceil(PAGE_SIZE))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two quantities.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// The larger of two quantities.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// True if this is zero bytes.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Fraction `self / denom` as a ratio; zero when `denom` is zero.
    pub fn fraction_of(self, denom: Bytes) -> Ratio {
        if denom.0 == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(self.0 as f64 / denom.0 as f64)
        }
    }

    /// Parses a human-readable size: `4GiB`, `512MiB`, `64KiB`, `100B`
    /// or a raw byte count.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidConfig`] on unknown suffixes or
    /// non-numeric values.
    ///
    /// # Examples
    ///
    /// ```
    /// use vecycle_types::Bytes;
    ///
    /// assert_eq!(Bytes::parse("4GiB")?, Bytes::from_gib(4));
    /// assert_eq!(Bytes::parse("4096")?, Bytes::new(4096));
    /// assert!(Bytes::parse("4GB").is_err());
    /// # Ok::<(), vecycle_types::Error>(())
    /// ```
    pub fn parse(s: &str) -> crate::Result<Bytes> {
        let (digits, mult): (&str, u64) = if let Some(d) = s.strip_suffix("GiB") {
            (d, 1 << 30)
        } else if let Some(d) = s.strip_suffix("MiB") {
            (d, 1 << 20)
        } else if let Some(d) = s.strip_suffix("KiB") {
            (d, 1 << 10)
        } else if let Some(d) = s.strip_suffix('B') {
            (d, 1)
        } else {
            (s, 1)
        };
        let n: u64 = digits
            .trim()
            .parse()
            .map_err(|_| crate::Error::InvalidConfig {
                reason: format!("cannot parse size {s:?} (try 4GiB, 512MiB, 4096)"),
            })?;
        n.checked_mul(mult)
            .map(Bytes::new)
            .ok_or_else(|| crate::Error::InvalidConfig {
                reason: format!("size {s:?} overflows"),
            })
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 >= 1024 * 1024 * 1024 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if self.0 >= 1024 * 1024 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

/// A count of whole 4 KiB pages.
///
/// # Examples
///
/// ```
/// use vecycle_types::{Bytes, PageCount};
///
/// let n = PageCount::new(256);
/// assert_eq!(n.bytes(), Bytes::from_mib(1));
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageCount(u64);

impl PageCount {
    /// Zero pages.
    pub const ZERO: PageCount = PageCount(0);

    /// Creates a page count.
    pub const fn new(pages: u64) -> Self {
        PageCount(pages)
    }

    /// The raw page count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The page count as `usize` (for indexing).
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Total bytes occupied by this many pages.
    pub const fn bytes(self) -> Bytes {
        Bytes::from_pages(self.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: PageCount) -> PageCount {
        PageCount(self.0.saturating_sub(rhs.0))
    }

    /// Fraction `self / denom`; zero when `denom` is zero.
    pub fn fraction_of(self, denom: PageCount) -> Ratio {
        if denom.0 == 0 {
            Ratio::ZERO
        } else {
            Ratio::new(self.0 as f64 / denom.0 as f64)
        }
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

impl Add for PageCount {
    type Output = PageCount;
    fn add(self, rhs: PageCount) -> PageCount {
        PageCount(self.0 + rhs.0)
    }
}

impl AddAssign for PageCount {
    fn add_assign(&mut self, rhs: PageCount) {
        self.0 += rhs.0;
    }
}

impl Sub for PageCount {
    type Output = PageCount;
    fn sub(self, rhs: PageCount) -> PageCount {
        PageCount(self.0 - rhs.0)
    }
}

impl Sum for PageCount {
    fn sum<I: Iterator<Item = PageCount>>(iter: I) -> PageCount {
        iter.fold(PageCount::ZERO, Add::add)
    }
}

/// A data rate in bytes per second.
///
/// # Examples
///
/// ```
/// use vecycle_types::{Bytes, BytesPerSec};
///
/// // Gigabit Ethernet moves roughly 120 MiB/s of payload.
/// let link = BytesPerSec::from_mib_per_sec(120);
/// let t = link.time_to_transfer(Bytes::from_gib(1));
/// assert!((t.as_secs_f64() - 8.53).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BytesPerSec(f64);

impl BytesPerSec {
    /// Creates a rate from raw bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative, NaN or infinite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "invalid rate: {rate}");
        BytesPerSec(rate)
    }

    /// Creates a rate from MiB/s.
    pub fn from_mib_per_sec(mib: u64) -> Self {
        BytesPerSec((mib * 1024 * 1024) as f64)
    }

    /// Creates a rate from a nominal megabit-per-second link speed.
    ///
    /// Uses decimal megabits (10^6 bits) as network gear does.
    pub fn from_mbit_per_sec(mbit: f64) -> Self {
        BytesPerSec::new(mbit * 1e6 / 8.0)
    }

    /// The raw rate in bytes per second.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// The rate in MiB/s.
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 / (1024.0 * 1024.0)
    }

    /// Time needed to move `bytes` at this rate.
    ///
    /// A zero rate yields [`SimDuration::MAX`], which keeps arithmetic on
    /// stalled links well-defined.
    pub fn time_to_transfer(self, bytes: Bytes) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes.as_f64() / self.0)
    }

    /// Bytes moved in `dur` at this rate.
    pub fn bytes_in(self, dur: SimDuration) -> Bytes {
        Bytes::new((self.0 * dur.as_secs_f64()) as u64)
    }

    /// The smaller of two rates.
    pub fn min(self, rhs: BytesPerSec) -> BytesPerSec {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MiB/s", self.as_mib_per_sec())
    }
}

impl Mul<f64> for BytesPerSec {
    type Output = BytesPerSec;
    fn mul(self, rhs: f64) -> BytesPerSec {
        BytesPerSec::new(self.0 * rhs)
    }
}

impl Div<f64> for BytesPerSec {
    type Output = BytesPerSec;
    fn div(self, rhs: f64) -> BytesPerSec {
        BytesPerSec::new(self.0 / rhs)
    }
}

/// A dimensionless ratio, usually in `[0, 1]`.
///
/// Used for similarities, traffic fractions and reductions. Construction
/// clamps NaN to zero but deliberately does *not* clamp the range: ratios
/// above 1 are meaningful (e.g. overhead) and asserting on them belongs to
/// the caller.
///
/// # Examples
///
/// ```
/// use vecycle_types::Ratio;
///
/// let sim = Ratio::new(0.42);
/// assert_eq!(format!("{sim}"), "42.0%");
/// assert!((sim.complement().as_f64() - 0.58).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Ratio(f64);

impl Ratio {
    /// The zero ratio.
    pub const ZERO: Ratio = Ratio(0.0);

    /// The unit ratio.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio. NaN becomes zero.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            Ratio(0.0)
        } else {
            Ratio(v)
        }
    }

    /// The raw value.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `1 - self`, clamped at zero.
    pub fn complement(self) -> Ratio {
        Ratio((1.0 - self.0).max(0.0))
    }

    /// The value as a percentage.
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True if the value lies in `[0, 1]` (inclusive, with tiny slack).
    pub fn is_fraction(self) -> bool {
        (-1e-9..=1.0 + 1e-9).contains(&self.0)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.0 + rhs.0)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: f64) -> Ratio {
        Ratio::new(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::from_kib(1), Bytes::new(1024));
        assert_eq!(Bytes::from_mib(1), Bytes::from_kib(1024));
        assert_eq!(Bytes::from_gib(1), Bytes::from_mib(1024));
        assert_eq!(Bytes::from_pages(1), Bytes::new(PAGE_SIZE));
    }

    #[test]
    fn bytes_page_round_trip() {
        assert_eq!(PageCount::new(7).bytes().pages_ceil(), PageCount::new(7));
        // Partial pages round up.
        assert_eq!(Bytes::new(PAGE_SIZE + 1).pages_ceil(), PageCount::new(2));
        assert_eq!(Bytes::ZERO.pages_ceil(), PageCount::ZERO);
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::from_mib(3);
        let b = Bytes::from_mib(1);
        assert_eq!(a - b, Bytes::from_mib(2));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(b * 3, a);
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::from_mib(5));
    }

    #[test]
    fn bytes_display_scales() {
        assert_eq!(format!("{}", Bytes::new(17)), "17 B");
        assert_eq!(format!("{}", Bytes::from_kib(2)), "2.00 KiB");
        assert_eq!(format!("{}", Bytes::from_mib(2)), "2.00 MiB");
        assert_eq!(format!("{}", Bytes::from_gib(2)), "2.00 GiB");
    }

    #[test]
    fn rate_transfer_time_matches_paper_rule_of_thumb() {
        // "Copying one gigabyte takes about 10 seconds over a gigabit link."
        let gbe = BytesPerSec::from_mib_per_sec(120);
        let t = gbe.time_to_transfer(Bytes::from_gib(1));
        assert!(t.as_secs_f64() > 8.0 && t.as_secs_f64() < 10.0);
    }

    #[test]
    fn rate_zero_transfers_never() {
        let stalled = BytesPerSec::new(0.0);
        assert_eq!(stalled.time_to_transfer(Bytes::new(1)), SimDuration::MAX);
    }

    #[test]
    fn rate_round_trip_bytes_in() {
        let r = BytesPerSec::from_mib_per_sec(100);
        let d = SimDuration::from_secs_f64(2.5);
        let b = r.bytes_in(d);
        assert_eq!(b, Bytes::new(250 * 1024 * 1024));
    }

    #[test]
    fn mbit_uses_decimal_bits() {
        let wan = BytesPerSec::from_mbit_per_sec(465.0);
        assert!((wan.as_f64() - 465e6 / 8.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn rate_rejects_negative() {
        let _ = BytesPerSec::new(-1.0);
    }

    #[test]
    fn ratio_basics() {
        assert_eq!(Ratio::new(f64::NAN), Ratio::ZERO);
        assert_eq!(Ratio::new(0.25).complement(), Ratio::new(0.75));
        assert!(Ratio::new(0.5).is_fraction());
        assert!(!Ratio::new(1.5).is_fraction());
        assert_eq!(Ratio::new(0.125).as_percent(), 12.5);
    }

    #[test]
    fn parse_sizes() {
        assert_eq!(Bytes::parse("4GiB").unwrap(), Bytes::from_gib(4));
        assert_eq!(Bytes::parse("512MiB").unwrap(), Bytes::from_mib(512));
        assert_eq!(Bytes::parse("64KiB").unwrap(), Bytes::from_kib(64));
        assert_eq!(Bytes::parse("17B").unwrap(), Bytes::new(17));
        assert_eq!(Bytes::parse("4096").unwrap(), Bytes::new(4096));
        assert!(Bytes::parse("4GB").is_err());
        assert!(Bytes::parse("x").is_err());
        assert!(Bytes::parse("99999999999999999999GiB").is_err());
    }

    #[test]
    fn serde_round_trips() {
        let b = Bytes::from_mib(3);
        let json = serde_json::to_string(&b).unwrap();
        assert_eq!(serde_json::from_str::<Bytes>(&json).unwrap(), b);
        let r = BytesPerSec::from_mib_per_sec(120);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<BytesPerSec>(&json).unwrap(), r);
        let p = PageCount::new(42);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<PageCount>(&json).unwrap(), p);
    }

    #[test]
    fn fraction_of_handles_zero_denominator() {
        assert_eq!(Bytes::from_mib(1).fraction_of(Bytes::ZERO), Ratio::ZERO);
        assert_eq!(PageCount::new(5).fraction_of(PageCount::ZERO), Ratio::ZERO);
        let half = PageCount::new(5).fraction_of(PageCount::new(10));
        assert!((half.as_f64() - 0.5).abs() < 1e-12);
    }
}
