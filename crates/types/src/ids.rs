//! Identifier newtypes for hosts, VMs, traced machines and pages.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn as_u32(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for table lookups.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// Identifies a physical host in a simulated cluster.
    HostId,
    "host-"
);
id_type!(
    /// Identifies a virtual machine.
    VmId,
    "vm-"
);
id_type!(
    /// Identifies a traced machine from the trace catalog (Table 1).
    MachineId,
    "machine-"
);

/// The index of a page within a guest's physical memory.
///
/// Page indexes are dense: a VM with `n` pages uses indexes `0..n`.
///
/// # Examples
///
/// ```
/// use vecycle_types::PageIndex;
///
/// let p = PageIndex::new(42);
/// assert_eq!(p.byte_offset(), 42 * 4096);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageIndex(u64);

impl PageIndex {
    /// Creates a page index.
    pub const fn new(raw: u64) -> Self {
        PageIndex(raw)
    }

    /// The raw index.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The raw index as `usize`.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Byte offset of this page within guest physical memory.
    pub const fn byte_offset(self) -> u64 {
        self.0 * crate::units::PAGE_SIZE
    }
}

impl fmt::Display for PageIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page-{}", self.0)
    }
}

impl From<u64> for PageIndex {
    fn from(raw: u64) -> Self {
        PageIndex(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(format!("{}", HostId::new(3)), "host-3");
        assert_eq!(format!("{}", VmId::new(0)), "vm-0");
        assert_eq!(format!("{}", MachineId::new(9)), "machine-9");
        assert_eq!(format!("{}", PageIndex::new(5)), "page-5");
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(HostId::from(7).as_u32(), 7);
        assert_eq!(VmId::new(8).as_usize(), 8);
        assert_eq!(PageIndex::from(11u64).as_u64(), 11);
    }

    #[test]
    fn page_index_byte_offset() {
        assert_eq!(PageIndex::new(0).byte_offset(), 0);
        assert_eq!(PageIndex::new(2).byte_offset(), 8192);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(HostId::new(1) < HostId::new(2));
        assert!(PageIndex::new(9) < PageIndex::new(10));
    }
}
