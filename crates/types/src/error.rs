//! The workspace-wide error type.

use std::fmt;

/// Result alias using the workspace [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors shared across the VeCycle crates.
///
/// Subsystems with richer failure modes (checkpoint I/O, migration engine)
/// define their own error enums and convert into this one at the public
/// boundary where a single type is more convenient.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A digest string or buffer was malformed.
    InvalidDigest {
        /// Why the digest was rejected.
        reason: String,
    },
    /// A configuration value was out of its valid range.
    InvalidConfig {
        /// Which parameter was invalid and why.
        reason: String,
    },
    /// An entity lookup (host, VM, checkpoint, machine) failed.
    NotFound {
        /// What was being looked up.
        what: String,
    },
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// Stored data failed validation (corruption, truncation, bad magic).
    Corrupt {
        /// What was corrupt and how it was detected.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDigest { reason } => write!(f, "invalid digest: {reason}"),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::NotFound { what } => write!(f, "not found: {what}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corrupt { detail } => write!(f, "corrupt data: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::NotFound {
            what: "checkpoint for vm-3".into(),
        };
        assert_eq!(e.to_string(), "not found: checkpoint for vm-3");
    }

    #[test]
    fn io_error_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = Error::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("eof"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
