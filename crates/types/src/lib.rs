//! Shared value types for the VeCycle workspace.
//!
//! This crate holds the vocabulary every other crate speaks: byte and page
//! quantities, simulated time, rates, identifiers for hosts/VMs/machines,
//! and the [`PageDigest`] content fingerprint type.
//!
//! Everything here is a small, cheap value type. The newtypes exist so the
//! compiler keeps bytes, pages, seconds and rates from being mixed up — a
//! classic source of silent errors in simulators.
//!
//! # Examples
//!
//! ```
//! use vecycle_types::{Bytes, BytesPerSec, SimDuration};
//!
//! let ram = Bytes::from_mib(4096);
//! let gbe = BytesPerSec::from_mib_per_sec(120);
//! let t: SimDuration = gbe.time_to_transfer(ram);
//! assert!((t.as_secs_f64() - 34.13).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
mod error;
mod ids;
mod time;
mod units;

pub use digest::PageDigest;
pub use error::{Error, Result};
pub use ids::{HostId, MachineId, PageIndex, VmId};
pub use time::{SimDuration, SimTime};
pub use units::{Bytes, BytesPerSec, PageCount, Ratio, PAGE_SIZE};
