//! Simulated time: instants and durations with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A span of simulated time.
///
/// # Examples
///
/// ```
/// use vecycle_types::SimDuration;
///
/// let d = SimDuration::from_mins(90);
/// assert_eq!(d.as_hours_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration (used for "never").
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * NANOS_PER_SEC)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 24 * 3600 * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        let ns = secs * NANOS_PER_SEC as f64;
        assert!(ns <= u64::MAX as f64, "duration overflow: {secs}s");
        SimDuration(ns as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two durations.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// True if this duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 3600.0 {
            write!(f, "{:.2} h", s / 3600.0)
        } else if s >= 60.0 {
            write!(f, "{:.2} min", s / 60.0)
        } else if s >= 1.0 {
            write!(f, "{s:.2} s")
        } else {
            write!(f, "{:.2} ms", s * 1e3)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// An instant on the simulated clock, measured from the simulation epoch.
///
/// # Examples
///
/// ```
/// use vecycle_types::{SimDuration, SimTime};
///
/// let t = SimTime::EPOCH + SimDuration::from_hours(9);
/// assert_eq!(t.since_epoch().as_hours_f64(), 9.0);
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates an instant `d` after the epoch.
    pub const fn from_epoch(d: SimDuration) -> Self {
        SimTime(d.as_nanos())
    }

    /// The elapsed time since the epoch.
    pub const fn since_epoch(self) -> SimDuration {
        SimDuration::from_nanos(self.0)
    }

    /// The duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "duration_since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }

    /// Checked version of [`SimTime::duration_since`].
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", self.since_epoch())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_unit_views() {
        let d = SimDuration::from_mins(90);
        assert_eq!(d.as_hours_f64(), 1.5);
        assert_eq!(d.as_mins_f64(), 90.0);
    }

    #[test]
    fn duration_saturation() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.00 ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.00 s");
        assert_eq!(format!("{}", SimDuration::from_mins(5)), "5.00 min");
        assert_eq!(format!("{}", SimDuration::from_hours(5)), "5.00 h");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn duration_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-0.1);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::EPOCH + SimDuration::from_hours(2);
        let t1 = t0 + SimDuration::from_mins(30);
        assert_eq!(t1.duration_since(t0), SimDuration::from_mins(30));
        assert_eq!(t1 - SimDuration::from_mins(30), t0);
        assert_eq!(t0.checked_duration_since(t1), None);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn time_duration_since_panics_when_reversed() {
        let t0 = SimTime::EPOCH;
        let t1 = t0 + SimDuration::from_secs(1);
        let _ = t0.duration_since(t1);
    }

    #[test]
    fn time_ordering() {
        let a = SimTime::EPOCH + SimDuration::from_secs(1);
        let b = SimTime::EPOCH + SimDuration::from_secs(2);
        assert!(a < b);
        let mut t = a;
        t += SimDuration::from_secs(1);
        assert_eq!(t, b);
    }
}
