//! The [`PageDigest`] content fingerprint type.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 128-bit content digest of one 4 KiB page.
///
/// The paper's prototype uses MD5 (16 bytes) per page; every strategy that
/// performs content-based redundancy elimination keys on this value. The
/// digest type itself is algorithm-agnostic — `vecycle-hash` produces these
/// from MD5 or from truncated SHA variants.
///
/// # Examples
///
/// ```
/// use vecycle_types::PageDigest;
///
/// let d = PageDigest::new([0xab; 16]);
/// assert_eq!(d.to_hex(), "ab".repeat(16));
/// assert!(!d.is_zero_page());
/// assert!(PageDigest::ZERO_PAGE.is_zero_page());
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PageDigest([u8; 16]);

impl PageDigest {
    /// Number of bytes in a digest (MD5-sized).
    pub const LEN: usize = 16;

    /// The well-known digest of an all-zero page.
    ///
    /// This is a *sentinel*, not a real MD5 value: the trace layer assigns
    /// it to zero pages so zero-page statistics can be computed without
    /// hashing. The hash layer maps real all-zero pages to it as well.
    pub const ZERO_PAGE: PageDigest = PageDigest([0u8; 16]);

    /// Creates a digest from raw bytes.
    pub const fn new(bytes: [u8; 16]) -> Self {
        PageDigest(bytes)
    }

    /// Derives a digest from a 64-bit content identifier.
    ///
    /// The synthetic trace generator represents page *content* as a 64-bit
    /// ID; this expansion is injective, so distinct IDs never collide —
    /// mirroring the paper's assumption that true MD5 collisions are rare
    /// enough to ignore.
    pub fn from_content_id(id: u64) -> Self {
        if id == 0 {
            return PageDigest::ZERO_PAGE;
        }
        // SplitMix64-style diffusion for the high half; the low half keeps
        // the raw ID so the mapping stays injective by construction.
        let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&z.to_le_bytes());
        out[8..].copy_from_slice(&id.to_le_bytes());
        PageDigest(out)
    }

    /// The raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub const fn into_bytes(self) -> [u8; 16] {
        self.0
    }

    /// True if this is the zero-page sentinel digest.
    pub fn is_zero_page(self) -> bool {
        self == PageDigest::ZERO_PAGE
    }

    /// Lowercase hexadecimal rendering.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Parses a 32-character hexadecimal string.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::InvalidDigest`] if the string is not exactly
    /// 32 hex characters.
    pub fn from_hex(s: &str) -> crate::Result<Self> {
        let bytes = s.as_bytes();
        if bytes.len() != 32 {
            return Err(crate::Error::InvalidDigest {
                reason: format!("expected 32 hex chars, got {}", bytes.len()),
            });
        }
        let mut out = [0u8; 16];
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = hex_val(chunk[0]).ok_or_else(|| bad_char(chunk[0]))?;
            let lo = hex_val(chunk[1]).ok_or_else(|| bad_char(chunk[1]))?;
            out[i] = (hi << 4) | lo;
        }
        Ok(PageDigest(out))
    }

    /// A stable 64-bit key derived from the digest, for hash-map indexes.
    pub fn short_key(self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

fn bad_char(c: u8) -> crate::Error {
    crate::Error::InvalidDigest {
        reason: format!("invalid hex character {:?}", c as char),
    }
}

impl fmt::Display for PageDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; 16]> for PageDigest {
    fn from(bytes: [u8; 16]) -> Self {
        PageDigest(bytes)
    }
}

impl AsRef<[u8]> for PageDigest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let d = PageDigest::new([
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ]);
        let hex = d.to_hex();
        assert_eq!(hex, "00112233445566778899aabbccddeeff");
        assert_eq!(PageDigest::from_hex(&hex).unwrap(), d);
        assert_eq!(PageDigest::from_hex(&hex.to_uppercase()).unwrap(), d);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert!(PageDigest::from_hex("abc").is_err());
        assert!(PageDigest::from_hex(&"g".repeat(32)).is_err());
    }

    #[test]
    fn zero_page_sentinel() {
        assert!(PageDigest::ZERO_PAGE.is_zero_page());
        assert_eq!(PageDigest::from_content_id(0), PageDigest::ZERO_PAGE);
        assert!(!PageDigest::from_content_id(1).is_zero_page());
    }

    #[test]
    fn content_id_mapping_is_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(PageDigest::from_content_id(id)));
        }
    }

    #[test]
    fn content_id_low_half_preserves_id() {
        let d = PageDigest::from_content_id(0xdead_beef);
        let tail = u64::from_le_bytes(d.as_bytes()[8..].try_into().unwrap());
        assert_eq!(tail, 0xdead_beef);
    }

    #[test]
    fn display_matches_to_hex() {
        let d = PageDigest::from_content_id(1234);
        assert_eq!(format!("{d}"), d.to_hex());
    }

    #[test]
    fn short_key_is_stable() {
        let d = PageDigest::from_content_id(99);
        assert_eq!(d.short_key(), d.short_key());
    }
}
