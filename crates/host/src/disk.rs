//! [`DiskSpec`]: the local disks that store checkpoints.

use serde::{Deserialize, Serialize};

use vecycle_types::{Bytes, BytesPerSec, SimDuration};

/// A local disk model: sequential throughput plus per-random-access
/// penalty.
///
/// §4.4: checkpoints live on either a Samsung HD204UI spinning disk or an
/// Intel SSD over SATA-2; the paper found the choice makes no difference
/// because checkpoint I/O overlaps the (slower) network — a claim the
/// disk ablation bench verifies with these models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    sequential: BytesPerSec,
    seek: SimDuration,
    label: DiskKind,
    capacity: Bytes,
}

/// Which physical disk a spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskKind {
    /// Spinning disk.
    Hdd,
    /// Solid-state disk.
    Ssd,
}

impl DiskSpec {
    /// The benchmark HDD: Samsung HD204UI (2 TB, ~130 MiB/s sequential,
    /// ~12 ms average access).
    pub fn hdd_samsung_hd204ui() -> Self {
        DiskSpec {
            sequential: BytesPerSec::from_mib_per_sec(130),
            seek: SimDuration::from_millis(12),
            label: DiskKind::Hdd,
            capacity: Bytes::new(2_000_000_000_000), // 2 TB nominal
        }
    }

    /// The benchmark SSD: Intel 330-series 128 GB on SATA-2 (~250 MiB/s
    /// sequential, ~0.1 ms access).
    pub fn ssd_intel_330() -> Self {
        DiskSpec {
            sequential: BytesPerSec::from_mib_per_sec(250),
            seek: SimDuration::from_nanos(100_000),
            label: DiskKind::Ssd,
            capacity: Bytes::new(128_000_000_000), // 128 GB nominal
        }
    }

    /// Creates a custom disk model with a 1 TiB nominal capacity.
    pub fn new(sequential: BytesPerSec, seek: SimDuration, label: DiskKind) -> Self {
        DiskSpec {
            sequential,
            seek,
            label,
            capacity: Bytes::from_gib(1024),
        }
    }

    /// Overrides the nominal capacity — the hard ceiling on any
    /// checkpoint byte budget carved out of this disk.
    #[must_use]
    pub fn with_capacity(mut self, capacity: Bytes) -> Self {
        self.capacity = capacity;
        self
    }

    /// Nominal capacity of the disk.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Which kind of disk this is.
    pub fn kind(&self) -> DiskKind {
        self.label
    }

    /// Sequential throughput.
    pub fn sequential(&self) -> BytesPerSec {
        self.sequential
    }

    /// Time for a sequential read/write of `bytes` (one seek + stream).
    ///
    /// Sequential access "ensures optimal use of the disk's available I/O
    /// bandwidth" (§3.3) — the checkpoint file is read front to back.
    pub fn sequential_time(&self, bytes: Bytes) -> SimDuration {
        self.seek
            .saturating_add(self.sequential.time_to_transfer(bytes))
    }

    /// Time for `count` random accesses of `access_size` each — the cost
    /// profile of Listing 1's fallback `lseek` + `read` per non-matching
    /// page if reads were *not* batched.
    pub fn random_access_time(&self, count: u64, access_size: Bytes) -> SimDuration {
        let stream = self.sequential.time_to_transfer(access_size * count);
        (self.seek * count).saturating_add(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_reads_checkpoint_faster_than_gbe_moves_it() {
        // The premise of VeCycle: "reading from the local disk is
        // potentially faster than over a ... network link" — and even
        // when it is not, it overlaps.
        let hdd = DiskSpec::hdd_samsung_hd204ui();
        let gib = Bytes::from_gib(1);
        let t = hdd.sequential_time(gib).as_secs_f64();
        assert!(t > 7.0 && t < 9.0, "t = {t}");
    }

    #[test]
    fn ssd_is_faster_sequentially() {
        let hdd = DiskSpec::hdd_samsung_hd204ui();
        let ssd = DiskSpec::ssd_intel_330();
        let gib = Bytes::from_gib(1);
        assert!(ssd.sequential_time(gib) < hdd.sequential_time(gib));
    }

    #[test]
    fn random_access_punishes_hdd() {
        let hdd = DiskSpec::hdd_samsung_hd204ui();
        let ssd = DiskSpec::ssd_intel_330();
        // 10k random 4 KiB reads: seek-bound on HDD (~2 min), trivial on
        // SSD — why the destination reads the checkpoint sequentially.
        let page = Bytes::from_kib(4);
        let t_hdd = hdd.random_access_time(10_000, page).as_secs_f64();
        let t_ssd = ssd.random_access_time(10_000, page).as_secs_f64();
        assert!(t_hdd > 100.0, "t_hdd = {t_hdd}");
        assert!(t_ssd < 5.0, "t_ssd = {t_ssd}");
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(DiskSpec::hdd_samsung_hd204ui().kind(), DiskKind::Hdd);
        assert_eq!(DiskSpec::ssd_intel_330().kind(), DiskKind::Ssd);
    }

    #[test]
    fn capacities_match_the_benchmark_hardware() {
        assert!(DiskSpec::hdd_samsung_hd204ui().capacity() > DiskSpec::ssd_intel_330().capacity());
        let small = DiskSpec::ssd_intel_330().with_capacity(Bytes::from_gib(4));
        assert_eq!(small.capacity(), Bytes::from_gib(4));
    }
}
