//! Hosts, disks, CPUs, clusters and migration schedules.
//!
//! The paper's testbed (§4.1) is two VM hosts with local HDD/SSD storage
//! for checkpoints, gigabit NICs and MD5 throughput of ~350 MiB/s per
//! core. This crate models those components — [`DiskSpec`], [`CpuSpec`],
//! [`Host`] — plus the [`Cluster`] container and the migration
//! *schedules* that drive multi-day scenarios: the §4.6 VDI
//! twice-a-weekday pattern and the ping-pong pattern of the IBM study.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod cpu;
mod disk;
mod obs;
mod schedule;

pub use cluster::{Cluster, Host, ScrubReport};
pub use cpu::CpuSpec;
pub use disk::DiskSpec;
pub use obs::{observe_restart, observe_save, observe_store};
pub use schedule::{MigrationLeg, MigrationSchedule};
