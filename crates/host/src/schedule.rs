//! Migration schedules: who moves where, when.

use vecycle_types::{HostId, SimDuration, SimTime, VmId};

/// One scheduled migration: move `vm` from `from` to `to` at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationLeg {
    /// When the migration is initiated.
    pub at: SimTime,
    /// The VM being moved.
    pub vm: VmId,
    /// Source host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
}

/// A time-ordered list of migrations.
#[derive(Debug, Clone, Default)]
pub struct MigrationSchedule {
    legs: Vec<MigrationLeg>,
}

impl MigrationSchedule {
    /// The §4.6 VDI schedule: the desktop VM moves from the consolidation
    /// server to the workstation at 9 am and back at 5 pm, every weekday,
    /// for `days` days starting from a Monday-00:00 epoch. "There are no
    /// migrations over the weekend."
    ///
    /// With `days = 19` (the paper's trace span, Wed 5 Nov – Sun 23 Nov
    /// 2014 mapped onto our Monday-based calendar) this yields 13
    /// weekdays and 26 migrations, matching §4.6.
    pub fn vdi(vm: VmId, workstation: HostId, consolidation_server: HostId, days: u64) -> Self {
        let mut legs = Vec::new();
        let mut weekdays = 0u64;
        for day in 0..days {
            let day_start = SimDuration::from_days(day);
            let dow = day % 7;
            if dow >= 5 {
                continue; // weekend
            }
            weekdays += 1;
            // 19 calendar days starting Monday contain 15 weekdays; the
            // paper's window has 13. Keep the first 13 for fidelity.
            if weekdays > 13 {
                break;
            }
            legs.push(MigrationLeg {
                at: SimTime::EPOCH + day_start + SimDuration::from_hours(9),
                vm,
                from: consolidation_server,
                to: workstation,
            });
            legs.push(MigrationLeg {
                at: SimTime::EPOCH + day_start + SimDuration::from_hours(17),
                vm,
                from: workstation,
                to: consolidation_server,
            });
        }
        MigrationSchedule { legs }
    }

    /// A ping-pong pattern: `vm` alternates between hosts `a` and `b`
    /// every `interval`, starting at `start`, for `count` migrations —
    /// the dominant pattern in the IBM study ("often just two hosts").
    pub fn ping_pong(
        vm: VmId,
        a: HostId,
        b: HostId,
        start: SimTime,
        interval: SimDuration,
        count: u64,
    ) -> Self {
        let legs = (0..count)
            .map(|i| {
                let (from, to) = if i % 2 == 0 { (a, b) } else { (b, a) };
                MigrationLeg {
                    at: start + interval * i,
                    vm,
                    from,
                    to,
                }
            })
            .collect();
        MigrationSchedule { legs }
    }

    /// The IBM-study pattern (Birke et al. \[7\]): a VM visits a *small*
    /// set of hosts — "in 68% of the cases a VM visits just two servers"
    /// — moving at random moments with a mean gap of `mean_interval`.
    ///
    /// Deterministic in `seed`; successive destinations are drawn from
    /// `hosts` (excluding the current one), so `hosts.len() == 2` yields
    /// exactly the ping-pong special case.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two hosts are given, `count` is zero, or the
    /// VM's starting host is not in `hosts`.
    pub fn small_host_set(
        vm: VmId,
        hosts: &[HostId],
        start_host: HostId,
        mean_interval: SimDuration,
        count: u64,
        seed: u64,
    ) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        assert!(count > 0, "need at least one migration");
        assert!(
            hosts.contains(&start_host),
            "start host must be in the host set"
        );
        // A tiny xorshift keeps this dependency-free and deterministic.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut at = SimTime::EPOCH;
        let mut from = start_host;
        let mut legs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            // Exponential-ish gaps: uniform in [0.5, 1.5) × mean.
            let jitter = 0.5 + (next() % 1000) as f64 / 1000.0;
            at += SimDuration::from_secs_f64(mean_interval.as_secs_f64() * jitter);
            let to = loop {
                let candidate = hosts[(next() % hosts.len() as u64) as usize];
                if candidate != from {
                    break candidate;
                }
            };
            legs.push(MigrationLeg { at, vm, from, to });
            from = to;
        }
        MigrationSchedule { legs }
    }

    /// The migrations, in time order.
    pub fn legs(&self) -> &[MigrationLeg] {
        &self.legs
    }

    /// Number of migrations.
    pub fn len(&self) -> usize {
        self.legs.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.legs.is_empty()
    }
}

impl<'a> IntoIterator for &'a MigrationSchedule {
    type Item = &'a MigrationLeg;
    type IntoIter = std::slice::Iter<'a, MigrationLeg>;

    fn into_iter(self) -> Self::IntoIter {
        self.legs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdi_schedule_has_26_migrations() {
        let s = MigrationSchedule::vdi(VmId::new(0), HostId::new(0), HostId::new(1), 19);
        assert_eq!(s.len(), 26);
    }

    #[test]
    fn vdi_alternates_directions_and_skips_weekends() {
        let s = MigrationSchedule::vdi(VmId::new(0), HostId::new(0), HostId::new(1), 19);
        for pair in s.legs().chunks(2) {
            // Morning: server -> workstation. Evening: back.
            assert_eq!(pair[0].from, HostId::new(1));
            assert_eq!(pair[0].to, HostId::new(0));
            assert_eq!(pair[1].from, HostId::new(0));
            assert_eq!(pair[1].to, HostId::new(1));
        }
        for leg in &s {
            let hours = leg.at.since_epoch().as_hours_f64();
            let day = (hours / 24.0) as u64 % 7;
            assert!(day < 5, "migration on weekend day {day}");
            let hod = hours % 24.0;
            assert!(hod == 9.0 || hod == 17.0, "odd hour {hod}");
        }
    }

    #[test]
    fn vdi_legs_are_time_ordered() {
        let s = MigrationSchedule::vdi(VmId::new(0), HostId::new(0), HostId::new(1), 19);
        assert!(s.legs().windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn ping_pong_alternates() {
        let s = MigrationSchedule::ping_pong(
            VmId::new(1),
            HostId::new(0),
            HostId::new(1),
            SimTime::EPOCH,
            SimDuration::from_hours(2),
            4,
        );
        assert_eq!(s.len(), 4);
        assert_eq!(s.legs()[0].from, HostId::new(0));
        assert_eq!(s.legs()[1].from, HostId::new(1));
        assert_eq!(s.legs()[2].from, HostId::new(0));
        assert_eq!(s.legs()[3].at.since_epoch(), SimDuration::from_hours(6));
    }

    #[test]
    fn small_host_set_is_consistent() {
        let hosts: Vec<HostId> = (0..3).map(HostId::new).collect();
        let s = MigrationSchedule::small_host_set(
            VmId::new(0),
            &hosts,
            HostId::new(0),
            SimDuration::from_hours(7 * 24), // the study's 7-day mean
            50,
            42,
        );
        assert_eq!(s.len(), 50);
        // Chained: each leg departs where the previous one arrived.
        let mut at = HostId::new(0);
        for leg in &s {
            assert_eq!(leg.from, at);
            assert_ne!(leg.from, leg.to);
            assert!(hosts.contains(&leg.to));
            at = leg.to;
        }
        // Strictly increasing times.
        assert!(s.legs().windows(2).all(|w| w[0].at < w[1].at));
        // Deterministic.
        let s2 = MigrationSchedule::small_host_set(
            VmId::new(0),
            &hosts,
            HostId::new(0),
            SimDuration::from_hours(7 * 24),
            50,
            42,
        );
        assert_eq!(s.legs(), s2.legs());
    }

    #[test]
    fn two_host_set_is_ping_pong() {
        let hosts = [HostId::new(0), HostId::new(1)];
        let s = MigrationSchedule::small_host_set(
            VmId::new(1),
            &hosts,
            HostId::new(0),
            SimDuration::from_hours(2),
            6,
            7,
        );
        for (i, leg) in s.legs().iter().enumerate() {
            let expect_from = HostId::new((i % 2) as u32);
            assert_eq!(leg.from, expect_from);
        }
    }

    #[test]
    #[should_panic(expected = "at least two hosts")]
    fn small_host_set_needs_two_hosts() {
        let _ = MigrationSchedule::small_host_set(
            VmId::new(0),
            &[HostId::new(0)],
            HostId::new(0),
            SimDuration::from_hours(1),
            1,
            1,
        );
    }

    #[test]
    fn empty_schedule() {
        let s = MigrationSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
