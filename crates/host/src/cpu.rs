//! [`CpuSpec`]: checksum throughput of a host CPU.

use serde::{Deserialize, Serialize};

use vecycle_types::{Bytes, BytesPerSec, SimDuration};

/// Checksum-computation capability of a host.
///
/// §3.4: "Our benchmark machines can calculate MD5 checksums at a rate of
/// 350 MiB/s on a single core, roughly 3 times faster than the bandwidth
/// provided by gigabit Ethernet." The per-algorithm single-core rates
/// here are in that ballpark; `threads` models the multi-threaded
/// execution §3.4 suggests for faster links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    md5: BytesPerSec,
    sha1: BytesPerSec,
    sha256: BytesPerSec,
    fnv: BytesPerSec,
    threads: u32,
}

impl CpuSpec {
    /// The benchmark hosts' Phenom II-class CPU (§4.1), single-threaded
    /// checksumming as in the prototype.
    pub fn phenom_ii() -> Self {
        CpuSpec {
            md5: BytesPerSec::from_mib_per_sec(350),
            sha1: BytesPerSec::from_mib_per_sec(280),
            sha256: BytesPerSec::from_mib_per_sec(140),
            fnv: BytesPerSec::from_mib_per_sec(2000),
            threads: 1,
        }
    }

    /// A copy with `threads` checksum workers (§3.4's "multi-threaded
    /// execution" option).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "at least one checksum thread required");
        self.threads = threads;
        self
    }

    /// The effective checksum rate for `algorithm`, across all threads.
    pub fn checksum_rate(&self, algorithm: vecycle_hash::ChecksumAlgorithm) -> BytesPerSec {
        use vecycle_hash::ChecksumAlgorithm as A;
        let single = match algorithm {
            A::Md5 => self.md5,
            A::Sha1 => self.sha1,
            A::Sha256 => self.sha256,
            A::Fnv1a => self.fnv,
            // `ChecksumAlgorithm` is non-exhaustive upstream; rate new
            // algorithms like MD5 until measured.
            _ => self.md5,
        };
        single * f64::from(self.threads)
    }

    /// Time to checksum `bytes` with `algorithm`.
    pub fn checksum_time(
        &self,
        algorithm: vecycle_hash::ChecksumAlgorithm,
        bytes: Bytes,
    ) -> SimDuration {
        self.checksum_rate(algorithm).time_to_transfer(bytes)
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::phenom_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_hash::ChecksumAlgorithm;

    #[test]
    fn md5_is_3x_gigabit() {
        let cpu = CpuSpec::phenom_ii();
        let md5 = cpu.checksum_rate(ChecksumAlgorithm::Md5).as_mib_per_sec();
        assert!((md5 / 120.0 - 2.9).abs() < 0.3, "ratio = {}", md5 / 120.0);
    }

    #[test]
    fn checksum_time_scales_with_size() {
        let cpu = CpuSpec::phenom_ii();
        let t1 = cpu.checksum_time(ChecksumAlgorithm::Md5, Bytes::from_gib(1));
        let t6 = cpu.checksum_time(ChecksumAlgorithm::Md5, Bytes::from_gib(6));
        // Paper: "it takes only 3 seconds to migrate small VMs (1 GiB)".
        assert!((t1.as_secs_f64() - 2.93).abs() < 0.1);
        assert!((t6.as_secs_f64() - t1.as_secs_f64() * 6.0).abs() < 0.01);
    }

    #[test]
    fn threads_multiply_throughput() {
        let cpu = CpuSpec::phenom_ii().with_threads(4);
        assert!((cpu.checksum_rate(ChecksumAlgorithm::Md5).as_mib_per_sec() - 1400.0).abs() < 1.0);
    }

    #[test]
    fn algorithm_rates_are_ordered() {
        let cpu = CpuSpec::phenom_ii();
        let md5 = cpu.checksum_rate(ChecksumAlgorithm::Md5).as_f64();
        let sha1 = cpu.checksum_rate(ChecksumAlgorithm::Sha1).as_f64();
        let sha256 = cpu.checksum_rate(ChecksumAlgorithm::Sha256).as_f64();
        let fnv = cpu.checksum_rate(ChecksumAlgorithm::Fnv1a).as_f64();
        assert!(fnv > md5 && md5 > sha1 && sha1 > sha256);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threads_panics() {
        let _ = CpuSpec::phenom_ii().with_threads(0);
    }
}
