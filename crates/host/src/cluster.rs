//! [`Host`] and [`Cluster`].

use std::sync::Arc;

use vecycle_checkpoint::{
    Checkpoint, CheckpointStore, DiskStore, EvictionPolicy, EvictionRecord, SaveOutcome,
};
use vecycle_net::LinkSpec;
use vecycle_types::{Bytes, HostId, VmId};

use crate::{CpuSpec, DiskSpec};

/// What a simulated host restart found while scrubbing its disk store —
/// the input for re-warming the in-memory catalog and for the
/// `host_restarts_total` / `scrub_pages_total` metrics.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Checkpoints that re-verified clean and were re-admitted.
    pub verified: u64,
    /// Pages across the clean checkpoints.
    pub clean_pages: u64,
    /// VMs whose checkpoint files failed the wire trailer check and
    /// were quarantined (file deleted, tombstone left).
    pub quarantined: Vec<VmId>,
    /// Estimated pages across the quarantined files.
    pub corrupt_pages: u64,
    /// Checkpoints the re-warm pass itself evicted (the quota also
    /// applies when reloading from disk).
    pub evicted: Vec<EvictionRecord>,
}

/// A physical host: CPU, checkpoint disk and checkpoint store.
///
/// # Examples
///
/// ```
/// use vecycle_host::Host;
/// use vecycle_types::HostId;
///
/// let host = Host::benchmark_default(HostId::new(0));
/// assert_eq!(host.id(), HostId::new(0));
/// assert_eq!(host.store().vm_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Host {
    id: HostId,
    cpu: CpuSpec,
    disk: DiskSpec,
    store: Arc<CheckpointStore>,
    disk_store: Option<Arc<DiskStore>>,
}

impl Host {
    /// Creates a host from explicit components.
    pub fn new(id: HostId, cpu: CpuSpec, disk: DiskSpec) -> Self {
        Host {
            id,
            cpu,
            disk,
            store: Arc::new(CheckpointStore::new()),
            disk_store: None,
        }
    }

    /// A host configured like the paper's benchmark machines (§4.1):
    /// Phenom II CPU, checkpoints on the spinning disk.
    pub fn benchmark_default(id: HostId) -> Self {
        Host::new(id, CpuSpec::phenom_ii(), DiskSpec::hdd_samsung_hd204ui())
    }

    /// The host's identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The host's CPU model.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// The host's checkpoint disk model.
    pub fn disk(&self) -> &DiskSpec {
        &self.disk
    }

    /// The host's checkpoint store (shared; hosts are cheaply cloneable).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Replaces the disk model (for the HDD-vs-SSD ablation).
    #[must_use]
    pub fn with_disk(mut self, disk: DiskSpec) -> Self {
        self.disk = disk;
        self
    }

    /// Attaches a durable on-disk checkpoint store. The in-memory
    /// [`CheckpointStore`] stays the fast path; sessions write through to
    /// this store and fall back to it when the in-memory one is cold
    /// (e.g. after a simulated host restart).
    #[must_use]
    pub fn with_disk_store(mut self, store: Arc<DiskStore>) -> Self {
        self.disk_store = Some(store);
        self
    }

    /// The durable checkpoint store, if one is attached.
    pub fn disk_store(&self) -> Option<&Arc<DiskStore>> {
        self.disk_store.as_ref()
    }

    /// Caps this host's checkpoint bytes at `quota`, evicting under
    /// `policy` — the byte budget is clamped to the disk's nominal
    /// capacity, since no budget can exceed the platter.
    ///
    /// Replaces the store, so apply before sharing the host.
    #[must_use]
    pub fn with_checkpoint_quota(mut self, quota: Bytes, policy: EvictionPolicy) -> Self {
        let quota = quota.min(self.disk.capacity());
        self.store = Arc::new(CheckpointStore::new().with_quota(quota, policy));
        self
    }

    /// Saves a checkpoint through quota admission, mirroring the result
    /// to the durable [`DiskStore`]: the file is written *before* the
    /// in-memory insert (write-through), and every VM whose last version
    /// was evicted has its file deleted — disk and memory never
    /// disagree about which VMs have a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the disk store; the in-memory
    /// catalog is untouched when the disk write fails.
    pub fn save_checkpoint(&self, checkpoint: Checkpoint) -> vecycle_types::Result<SaveOutcome> {
        if self
            .store
            .quota()
            .is_some_and(|q| checkpoint.storage_size() > q)
        {
            return Ok(SaveOutcome::refused());
        }
        if let Some(ds) = &self.disk_store {
            ds.save(&checkpoint)?;
        }
        let outcome = self.store.save_with_outcome(checkpoint);
        if let Some(ds) = &self.disk_store {
            for vm in outcome.fully_evicted_vms() {
                ds.remove(vm)?;
            }
        }
        Ok(outcome)
    }

    /// Simulates a host crash: the in-memory checkpoint catalog (and
    /// everything it knew — tombstones, return periods) is lost. The
    /// durable [`DiskStore`], if any, survives untouched; call
    /// [`Host::restart`] to recover from it.
    pub fn crash(&self) {
        self.store.clear();
    }

    /// Simulates the host coming back after a crash: re-opens the disk
    /// store and runs a scrub pass — every checkpoint file is
    /// re-verified against its wire trailer, corrupt ones are
    /// quarantined (deleted, tombstoned), and clean ones re-warm the
    /// in-memory catalog through normal quota admission.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than corruption (corruption is
    /// a quarantine, not an error).
    pub fn restart(&self) -> vecycle_types::Result<ScrubReport> {
        self.store.clear();
        let mut report = ScrubReport::default();
        let Some(ds) = &self.disk_store else {
            return Ok(report);
        };
        let scrub = ds.scrub()?;
        report.corrupt_pages = scrub.corrupt_pages;
        for cp in scrub.clean {
            report.verified += 1;
            report.clean_pages += cp.page_count().as_u64();
            let (vm, taken_at, size) = (cp.vm(), cp.taken_at(), cp.storage_size());
            let outcome = self.store.save_with_outcome(cp);
            if !outcome.stored {
                // The quota shrank below this checkpoint since it was
                // written: drop the file too, or disk and catalog would
                // disagree.
                ds.remove(vm)?;
                self.store.note_evicted(vm);
                report.evicted.push(EvictionRecord {
                    vm,
                    taken_at,
                    size,
                    reason: vecycle_checkpoint::EvictionReason::Quota,
                    last_version: true,
                });
                continue;
            }
            for vm in outcome.fully_evicted_vms() {
                ds.remove(vm)?;
            }
            report.evicted.extend(outcome.evicted);
        }
        for vm in scrub.quarantined {
            self.store.note_quarantined(vm);
            report.quarantined.push(vm);
        }
        Ok(report)
    }
}

/// A set of hosts joined by a network.
///
/// The paper's experiments use two hosts and one link; the IBM study's
/// patterns involve small host sets. One [`LinkSpec`] describes every
/// pair — adequate for a rack or an emulated WAN between two sites.
#[derive(Debug, Clone)]
pub struct Cluster {
    hosts: Vec<Host>,
    link: LinkSpec,
}

impl Cluster {
    /// Creates a cluster of `n` benchmark-default hosts joined by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(n: u32, link: LinkSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one host");
        Cluster {
            hosts: (0..n)
                .map(|i| Host::benchmark_default(HostId::new(i)))
                .collect(),
            link,
        }
    }

    /// Creates a cluster from explicit hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn from_hosts(hosts: Vec<Host>, link: LinkSpec) -> Self {
        assert!(!hosts.is_empty(), "a cluster needs at least one host");
        Cluster { hosts, link }
    }

    /// The hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Looks up a host by ID.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.iter().find(|h| h.id() == id)
    }

    /// The link between any pair of hosts.
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// Attaches a durable [`DiskStore`] to every host, rooted at
    /// `root/host-<id>` — the deployment shape of §3, where each host
    /// keeps its checkpoints on local storage that survives restarts.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the per-host directories.
    pub fn attach_disk_stores(
        mut self,
        root: impl AsRef<std::path::Path>,
    ) -> vecycle_types::Result<Self> {
        let root = root.as_ref();
        for host in &mut self.hosts {
            let store = DiskStore::open(root.join(format!("host-{}", host.id.as_u32())))?;
            host.disk_store = Some(Arc::new(store));
        }
        Ok(self)
    }

    /// Caps every host's checkpoint bytes at `quota` under `policy` —
    /// the cluster-wide disk-pressure knob of the quota sweep. Replaces
    /// each host's store, so apply before running migrations.
    #[must_use]
    pub fn with_checkpoint_quotas(mut self, quota: Bytes, policy: EvictionPolicy) -> Self {
        self.hosts = self
            .hosts
            .into_iter()
            .map(|h| h.with_checkpoint_quota(quota, policy))
            .collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_has_dense_ids() {
        let c = Cluster::homogeneous(3, LinkSpec::lan_gigabit());
        assert_eq!(c.hosts().len(), 3);
        for (i, h) in c.hosts().iter().enumerate() {
            assert_eq!(h.id().as_usize(), i);
        }
        assert!(c.host(HostId::new(2)).is_some());
        assert!(c.host(HostId::new(3)).is_none());
    }

    #[test]
    fn host_stores_are_independent() {
        use vecycle_checkpoint::Checkpoint;
        use vecycle_mem::DigestMemory;
        use vecycle_types::{PageCount, SimTime, VmId};

        let c = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let mem = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        c.hosts()[0]
            .store()
            .save(Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem));
        assert_eq!(c.hosts()[0].store().vm_count(), 1);
        assert_eq!(c.hosts()[1].store().vm_count(), 0);
    }

    #[test]
    fn clones_share_the_store() {
        let h = Host::benchmark_default(HostId::new(0));
        let h2 = h.clone();
        use vecycle_checkpoint::Checkpoint;
        use vecycle_mem::DigestMemory;
        use vecycle_types::{PageCount, SimTime, VmId};
        let mem = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        h.store()
            .save(Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem));
        assert_eq!(h2.store().vm_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        let _ = Cluster::homogeneous(0, LinkSpec::lan_gigabit());
    }

    #[test]
    fn with_disk_swaps_model() {
        use crate::disk::DiskKind;
        let h = Host::benchmark_default(HostId::new(0)).with_disk(DiskSpec::ssd_intel_330());
        assert_eq!(h.disk().kind(), DiskKind::Ssd);
    }

    fn lifecycle_cp(vm: u32, seed: u64) -> vecycle_checkpoint::Checkpoint {
        use vecycle_mem::DigestMemory;
        use vecycle_types::{PageCount, SimTime, VmId};
        let mem = DigestMemory::with_distinct_content(PageCount::new(8), seed);
        vecycle_checkpoint::Checkpoint::capture(VmId::new(vm), SimTime::EPOCH, &mem)
    }

    #[test]
    fn save_checkpoint_mirrors_evictions_to_disk() {
        use vecycle_types::VmId;
        let dir =
            std::env::temp_dir().join(format!("vecycle-host-evict-mirror-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let host = Host::benchmark_default(HostId::new(0))
            .with_checkpoint_quota(Bytes::new(256), EvictionPolicy::OldestFirst)
            .with_disk_store(Arc::new(DiskStore::open(&dir).unwrap()));
        // 8-page digest checkpoints are 128 bytes: the quota holds two.
        host.save_checkpoint(lifecycle_cp(1, 10)).unwrap();
        host.save_checkpoint(lifecycle_cp(2, 20)).unwrap();
        let outcome = host.save_checkpoint(lifecycle_cp(3, 30)).unwrap();
        assert!(outcome.stored);
        assert_eq!(outcome.evicted.len(), 1);
        // Disk and catalog agree: vm-1's file is gone with its entry.
        assert_eq!(
            host.disk_store().unwrap().vm_ids().unwrap(),
            host.store().vm_ids()
        );
        assert_eq!(
            host.store().gone(VmId::new(1)),
            Some(vecycle_checkpoint::GoneReason::Evicted)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_then_restart_scrubs_and_rewarms() {
        use vecycle_types::VmId;
        let dir =
            std::env::temp_dir().join(format!("vecycle-host-crash-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let host = Host::benchmark_default(HostId::new(1))
            .with_disk_store(Arc::new(DiskStore::open(&dir).unwrap()));
        host.save_checkpoint(lifecycle_cp(1, 10)).unwrap();
        host.save_checkpoint(lifecycle_cp(2, 20)).unwrap();
        // Rot vm-2's file behind the host's back.
        let path = dir.join("vm-2.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, bytes).unwrap();

        host.crash();
        assert_eq!(host.store().vm_count(), 0);
        let report = host.restart().unwrap();
        assert_eq!(report.verified, 1);
        assert_eq!(report.quarantined, vec![VmId::new(2)]);
        assert!(host.store().latest(VmId::new(1)).is_some());
        assert_eq!(
            host.store().gone(VmId::new(2)),
            Some(vecycle_checkpoint::GoneReason::Quarantined)
        );
        // Disk matches catalog after the scrub deleted the corrupt file.
        assert_eq!(
            host.disk_store().unwrap().vm_ids().unwrap(),
            host.store().vm_ids()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quota_is_clamped_to_disk_capacity() {
        let tiny = DiskSpec::ssd_intel_330().with_capacity(Bytes::new(512));
        let host = Host::new(HostId::new(0), CpuSpec::phenom_ii(), tiny)
            .with_checkpoint_quota(Bytes::from_gib(1), EvictionPolicy::OldestFirst);
        assert_eq!(host.store().quota(), Some(Bytes::new(512)));
    }

    #[test]
    fn attach_disk_stores_gives_each_host_its_own_directory() {
        let dir = std::env::temp_dir().join("vecycle-cluster-diskstore-test");
        let _ = std::fs::remove_dir_all(&dir);
        let c = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
            .attach_disk_stores(&dir)
            .unwrap();
        let roots: Vec<_> = c
            .hosts()
            .iter()
            .map(|h| h.disk_store().expect("attached").root().to_path_buf())
            .collect();
        assert_ne!(roots[0], roots[1]);
        assert!(roots.iter().all(|r| r.is_dir()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
