//! [`Host`] and [`Cluster`].

use std::sync::Arc;

use vecycle_checkpoint::{CheckpointStore, DiskStore};
use vecycle_net::LinkSpec;
use vecycle_types::HostId;

use crate::{CpuSpec, DiskSpec};

/// A physical host: CPU, checkpoint disk and checkpoint store.
///
/// # Examples
///
/// ```
/// use vecycle_host::Host;
/// use vecycle_types::HostId;
///
/// let host = Host::benchmark_default(HostId::new(0));
/// assert_eq!(host.id(), HostId::new(0));
/// assert_eq!(host.store().vm_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Host {
    id: HostId,
    cpu: CpuSpec,
    disk: DiskSpec,
    store: Arc<CheckpointStore>,
    disk_store: Option<Arc<DiskStore>>,
}

impl Host {
    /// Creates a host from explicit components.
    pub fn new(id: HostId, cpu: CpuSpec, disk: DiskSpec) -> Self {
        Host {
            id,
            cpu,
            disk,
            store: Arc::new(CheckpointStore::new()),
            disk_store: None,
        }
    }

    /// A host configured like the paper's benchmark machines (§4.1):
    /// Phenom II CPU, checkpoints on the spinning disk.
    pub fn benchmark_default(id: HostId) -> Self {
        Host::new(id, CpuSpec::phenom_ii(), DiskSpec::hdd_samsung_hd204ui())
    }

    /// The host's identifier.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// The host's CPU model.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// The host's checkpoint disk model.
    pub fn disk(&self) -> &DiskSpec {
        &self.disk
    }

    /// The host's checkpoint store (shared; hosts are cheaply cloneable).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Replaces the disk model (for the HDD-vs-SSD ablation).
    #[must_use]
    pub fn with_disk(mut self, disk: DiskSpec) -> Self {
        self.disk = disk;
        self
    }

    /// Attaches a durable on-disk checkpoint store. The in-memory
    /// [`CheckpointStore`] stays the fast path; sessions write through to
    /// this store and fall back to it when the in-memory one is cold
    /// (e.g. after a simulated host restart).
    #[must_use]
    pub fn with_disk_store(mut self, store: Arc<DiskStore>) -> Self {
        self.disk_store = Some(store);
        self
    }

    /// The durable checkpoint store, if one is attached.
    pub fn disk_store(&self) -> Option<&Arc<DiskStore>> {
        self.disk_store.as_ref()
    }
}

/// A set of hosts joined by a network.
///
/// The paper's experiments use two hosts and one link; the IBM study's
/// patterns involve small host sets. One [`LinkSpec`] describes every
/// pair — adequate for a rack or an emulated WAN between two sites.
#[derive(Debug, Clone)]
pub struct Cluster {
    hosts: Vec<Host>,
    link: LinkSpec,
}

impl Cluster {
    /// Creates a cluster of `n` benchmark-default hosts joined by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn homogeneous(n: u32, link: LinkSpec) -> Self {
        assert!(n > 0, "a cluster needs at least one host");
        Cluster {
            hosts: (0..n)
                .map(|i| Host::benchmark_default(HostId::new(i)))
                .collect(),
            link,
        }
    }

    /// Creates a cluster from explicit hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty.
    pub fn from_hosts(hosts: Vec<Host>, link: LinkSpec) -> Self {
        assert!(!hosts.is_empty(), "a cluster needs at least one host");
        Cluster { hosts, link }
    }

    /// The hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Looks up a host by ID.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.iter().find(|h| h.id() == id)
    }

    /// The link between any pair of hosts.
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// Attaches a durable [`DiskStore`] to every host, rooted at
    /// `root/host-<id>` — the deployment shape of §3, where each host
    /// keeps its checkpoints on local storage that survives restarts.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the per-host directories.
    pub fn attach_disk_stores(
        mut self,
        root: impl AsRef<std::path::Path>,
    ) -> vecycle_types::Result<Self> {
        let root = root.as_ref();
        for host in &mut self.hosts {
            let store = DiskStore::open(root.join(format!("host-{}", host.id.as_u32())))?;
            host.disk_store = Some(Arc::new(store));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_cluster_has_dense_ids() {
        let c = Cluster::homogeneous(3, LinkSpec::lan_gigabit());
        assert_eq!(c.hosts().len(), 3);
        for (i, h) in c.hosts().iter().enumerate() {
            assert_eq!(h.id().as_usize(), i);
        }
        assert!(c.host(HostId::new(2)).is_some());
        assert!(c.host(HostId::new(3)).is_none());
    }

    #[test]
    fn host_stores_are_independent() {
        use vecycle_checkpoint::Checkpoint;
        use vecycle_mem::DigestMemory;
        use vecycle_types::{PageCount, SimTime, VmId};

        let c = Cluster::homogeneous(2, LinkSpec::lan_gigabit());
        let mem = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        c.hosts()[0]
            .store()
            .save(Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem));
        assert_eq!(c.hosts()[0].store().vm_count(), 1);
        assert_eq!(c.hosts()[1].store().vm_count(), 0);
    }

    #[test]
    fn clones_share_the_store() {
        let h = Host::benchmark_default(HostId::new(0));
        let h2 = h.clone();
        use vecycle_checkpoint::Checkpoint;
        use vecycle_mem::DigestMemory;
        use vecycle_types::{PageCount, SimTime, VmId};
        let mem = DigestMemory::with_distinct_content(PageCount::new(4), 1);
        h.store()
            .save(Checkpoint::capture(VmId::new(0), SimTime::EPOCH, &mem));
        assert_eq!(h2.store().vm_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        let _ = Cluster::homogeneous(0, LinkSpec::lan_gigabit());
    }

    #[test]
    fn with_disk_swaps_model() {
        use crate::disk::DiskKind;
        let h = Host::benchmark_default(HostId::new(0)).with_disk(DiskSpec::ssd_intel_330());
        assert_eq!(h.disk().kind(), DiskKind::Ssd);
    }

    #[test]
    fn attach_disk_stores_gives_each_host_its_own_directory() {
        let dir = std::env::temp_dir().join("vecycle-cluster-diskstore-test");
        let _ = std::fs::remove_dir_all(&dir);
        let c = Cluster::homogeneous(2, LinkSpec::lan_gigabit())
            .attach_disk_stores(&dir)
            .unwrap();
        let roots: Vec<_> = c
            .hosts()
            .iter()
            .map(|h| h.disk_store().expect("attached").root().to_path_buf())
            .collect();
        assert_ne!(roots[0], roots[1]);
        assert!(roots.iter().all(|r| r.is_dir()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
