//! Lifecycle metrics for the checkpoint stores hosts carry.
//!
//! Three families describe the store's life under disk pressure:
//! `store_bytes{host=…}` (gauge: bytes resident right now),
//! `ckpt_evictions_total{policy,reason}` (who got pushed out and why)
//! and, after a simulated crash, `host_restarts_total` +
//! `scrub_pages_total{verdict=…}` (what the scrub pass found). All are
//! driven by simulated state only, so transcripts stay bit-identical
//! across thread counts.

use vecycle_obs::MetricsRegistry;

use crate::cluster::ScrubReport;
use crate::Host;

/// Refreshes the `store_bytes{host=…}` gauge from the host's current
/// in-memory catalog.
pub fn observe_store(metrics: &MetricsRegistry, host: &Host) {
    let label = format!("host-{}", host.id().as_u32());
    metrics.set_gauge(
        "store_bytes",
        &[("host", &label)],
        host.store().used().as_u64() as f64,
    );
}

/// Records the evictions a quota-governed save performed
/// (`ckpt_evictions_total{policy,reason}`) and refreshes the host's
/// `store_bytes` gauge. A save that evicted nothing only moves the
/// gauge.
pub fn observe_save(
    metrics: &MetricsRegistry,
    host: &Host,
    outcome: &vecycle_checkpoint::SaveOutcome,
) {
    let policy = host.store().policy().label();
    for record in &outcome.evicted {
        metrics.inc(
            "ckpt_evictions_total",
            &[("policy", policy), ("reason", record.reason.label())],
            1,
        );
    }
    observe_store(metrics, host);
}

/// Records a host restart and its scrub findings:
/// `host_restarts_total`, `scrub_pages_total{verdict=clean|corrupt}`,
/// plus any evictions the re-warm pass performed.
pub fn observe_restart(metrics: &MetricsRegistry, host: &Host, report: &ScrubReport) {
    metrics.inc("host_restarts_total", &[], 1);
    if report.clean_pages > 0 {
        metrics.inc(
            "scrub_pages_total",
            &[("verdict", "clean")],
            report.clean_pages,
        );
    }
    if report.corrupt_pages > 0 {
        metrics.inc(
            "scrub_pages_total",
            &[("verdict", "corrupt")],
            report.corrupt_pages,
        );
    }
    let policy = host.store().policy().label();
    for record in &report.evicted {
        metrics.inc(
            "ckpt_evictions_total",
            &[("policy", policy), ("reason", record.reason.label())],
            1,
        );
    }
    observe_store(metrics, host);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecycle_checkpoint::{Checkpoint, EvictionPolicy};
    use vecycle_mem::DigestMemory;
    use vecycle_types::{Bytes, HostId, PageCount, SimTime, VmId};

    fn cp(vm: u32, seed: u64) -> Checkpoint {
        let mem = DigestMemory::with_distinct_content(PageCount::new(8), seed);
        Checkpoint::capture(VmId::new(vm), SimTime::EPOCH, &mem)
    }

    #[test]
    fn save_and_eviction_show_up() {
        // 8-page digest checkpoints are 128 bytes; a 200-byte quota
        // holds exactly one, so the second save evicts the first.
        let host = Host::benchmark_default(HostId::new(3))
            .with_checkpoint_quota(Bytes::new(200), EvictionPolicy::OldestFirst);
        let m = MetricsRegistry::new();
        let o1 = host.save_checkpoint(cp(1, 10)).unwrap();
        observe_save(&m, &host, &o1);
        assert_eq!(m.counter_total("ckpt_evictions_total"), 0);
        let o2 = host.save_checkpoint(cp(2, 20)).unwrap();
        observe_save(&m, &host, &o2);
        assert_eq!(
            m.counter(
                "ckpt_evictions_total",
                &[("policy", "oldest_first"), ("reason", "quota")]
            ),
            1
        );
        let snap = m.snapshot();
        let gauge = snap
            .to_prometheus()
            .lines()
            .find(|l| l.starts_with("store_bytes"))
            .unwrap()
            .to_string();
        assert!(gauge.contains("host-3"), "{gauge}");
    }

    #[test]
    fn restart_without_disk_store_still_counts() {
        let host = Host::benchmark_default(HostId::new(0));
        let m = MetricsRegistry::new();
        let report = host.restart().unwrap();
        observe_restart(&m, &host, &report);
        assert_eq!(m.counter("host_restarts_total", &[]), 1);
        assert_eq!(m.counter_total("scrub_pages_total"), 0);
    }
}
