//! Deterministic observability for the VeCycle simulator.
//!
//! The simulator's entire argument is quantitative, so its telemetry
//! must be as reproducible as its results: this crate provides a
//! metrics registry (counters, gauges, fixed-bucket histograms) and
//! hierarchical span tracing (`migration > round > page-class`) that
//! are **bit-identical across runs and thread counts**. The rules that
//! make that possible:
//!
//! * **No wall-clock reads.** "Time" is simulated: bytes, rounds and
//!   [`SimDuration`](vecycle_types::SimDuration) values computed by the
//!   engine. Nothing in this crate calls `Instant::now`.
//! * **Deterministic ordering.** Metric series live in `BTreeMap`s
//!   keyed by `(name, sorted labels)`; snapshots, Prometheus text and
//!   JSONL streams iterate those maps, never a hash map.
//! * **Single-writer timeline.** Spans and events are recorded on the
//!   single-threaded control path only. Parallel scan shards use
//!   [`CounterShard`] — a lock-free local accumulator merged into the
//!   registry afterwards; counter addition commutes, so the merged
//!   totals are independent of shard scheduling (the same trick as
//!   `DedupIndex` in `vecycle-checkpoint`).
//!
//! Three export surfaces hang off [`MetricsSnapshot`]:
//! [`MetricsSnapshot::to_canonical_json`] (byte-stable, golden-test
//! friendly), [`MetricsSnapshot::to_prometheus`] (text exposition
//! format) and [`MetricsSnapshot::events_jsonl`] (one JSON object per
//! timeline entry — what the CLI tees with `--metrics-out`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod registry;
mod snapshot;

pub use registry::{BucketLayout, CounterShard, FieldValue, MetricsRegistry, SpanId};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, TimelineEntry};

/// Fixed bucket layouts, shared by every instrumented crate so series
/// with the same unit always agree on boundaries.
pub mod layouts {
    use crate::registry::BucketLayout;

    /// Wire/transfer sizes in bytes: 4 KiB page .. multi-GiB images.
    pub const BYTES: BucketLayout = BucketLayout {
        unit: "bytes",
        bounds: &[
            4_096,
            65_536,
            1_048_576,
            16_777_216,
            268_435_456,
            4_294_967_296,
        ],
    };

    /// Page counts: single page .. million-page working sets.
    pub const PAGES: BucketLayout = BucketLayout {
        unit: "pages",
        bounds: &[16, 256, 4_096, 65_536, 1_048_576],
    };

    /// Pre-copy round counts.
    pub const ROUNDS: BucketLayout = BucketLayout {
        unit: "rounds",
        bounds: &[1, 2, 4, 8, 16, 32],
    };

    /// Simulated durations in milliseconds: sub-ms stop-and-copy ..
    /// quarter-hour bulk transfers.
    pub const SIM_MILLIS: BucketLayout = BucketLayout {
        unit: "sim_ms",
        bounds: &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000],
    };
}
