//! Point-in-time snapshots and their three export formats.

use std::fmt::Write as _;

use crate::json::{push_f64, push_label_object, push_str_literal};
use crate::registry::{FieldValue, SpanId};

/// One counter series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge series at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Last value set (finite).
    pub value: f64,
}

/// One histogram series at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Unit tag from the bucket layout.
    pub unit: String,
    /// Finite bucket upper bounds (ascending).
    pub bounds: Vec<u64>,
    /// Per-slot observation counts; the final slot is the implicit
    /// `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

/// One entry of the chronological span/event timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEntry {
    /// A span opened.
    SpanStart {
        /// The span's id.
        id: SpanId,
        /// Enclosing span, if any.
        parent: Option<SpanId>,
        /// Span name (`migration`, `round`, `page_class`, …).
        name: String,
        /// Sorted label pairs.
        labels: Vec<(String, String)>,
    },
    /// A span closed.
    SpanEnd {
        /// The span's id.
        id: SpanId,
        /// Final attributes (simulated durations, byte counts).
        attrs: Vec<(String, u64)>,
    },
    /// A point event inside the innermost open span.
    Event {
        /// Enclosing span at record time.
        span: Option<SpanId>,
        /// Event name.
        name: String,
        /// Typed fields.
        fields: Vec<(String, FieldValue)>,
    },
}

/// A deterministic point-in-time capture of a
/// [`MetricsRegistry`](crate::MetricsRegistry).
///
/// Two runs that perform the same simulated work produce snapshots
/// whose [`MetricsSnapshot::to_canonical_json`] output is byte-equal —
/// the property the golden-transcript suite locks down.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, ordered by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// All gauges, ordered by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, ordered by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
    /// Spans and events in record order.
    pub timeline: Vec<TimelineEntry>,
}

impl MetricsSnapshot {
    /// Reads one counter series from the snapshot (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == sorted)
            .map_or(0, |c| c.value)
    }

    /// Sums a counter across all label sets of `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// All counter samples whose name is `name`.
    pub fn counters_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a CounterSample> {
        self.counters.iter().filter(move |c| c.name == name)
    }

    /// Serializes to canonical JSON: 2-space pretty, series in
    /// `BTreeMap` order, timeline in record order, floats via Rust's
    /// shortest round-trip `Display`. Byte-stable across runs and
    /// thread counts.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_str_literal(&mut out, &c.name);
            out.push_str(", \"labels\": ");
            push_label_object(&mut out, &c.labels);
            let _ = write!(out, ", \"value\": {}}}", c.value);
        }
        out.push_str(if self.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_str_literal(&mut out, &g.name);
            out.push_str(", \"labels\": ");
            push_label_object(&mut out, &g.labels);
            out.push_str(", \"value\": ");
            push_f64(&mut out, g.value);
            out.push('}');
        }
        out.push_str(if self.gauges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": ");
            push_str_literal(&mut out, &h.name);
            out.push_str(", \"labels\": ");
            push_label_object(&mut out, &h.labels);
            out.push_str(", \"unit\": ");
            push_str_literal(&mut out, &h.unit);
            let _ = write!(out, ", \"bounds\": {:?}", h.bounds);
            let _ = write!(out, ", \"counts\": {:?}", h.counts);
            let _ = write!(out, ", \"sum\": {}, \"count\": {}}}", h.sum, h.count);
        }
        out.push_str(if self.histograms.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"timeline\": [");
        for (i, entry) in self.timeline.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            push_timeline_entry(&mut out, entry);
        }
        out.push_str(if self.timeline.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Renders the Prometheus text exposition format (counters and
    /// gauges as-is; histograms with cumulative `le` buckets, `_sum`
    /// and `_count`). Series order follows the snapshot, so the output
    /// is deterministic too.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some(name.to_string());
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            push_prom_series(&mut out, &c.name, &c.labels, None);
            let _ = writeln!(out, " {}", c.value);
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            push_prom_series(&mut out, &g.name, &g.labels, None);
            let _ = writeln!(out, " {}", g.value);
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            let mut cumulative = 0u64;
            for (slot, &n) in h.counts.iter().enumerate() {
                cumulative += n;
                let le = h
                    .bounds
                    .get(slot)
                    .map_or("+Inf".to_string(), |b| b.to_string());
                push_prom_series(
                    &mut out,
                    &format!("{}_bucket", h.name),
                    &h.labels,
                    Some(("le", &le)),
                );
                let _ = writeln!(out, " {cumulative}");
            }
            push_prom_series(&mut out, &format!("{}_sum", h.name), &h.labels, None);
            let _ = writeln!(out, " {}", h.sum);
            push_prom_series(&mut out, &format!("{}_count", h.name), &h.labels, None);
            let _ = writeln!(out, " {}", h.count);
        }
        out
    }

    /// Renders the timeline as a JSONL stream: one compact JSON object
    /// per line, in record order — the format the CLI tees with
    /// `--metrics-out`.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.timeline {
            push_timeline_entry(&mut out, entry);
            out.push('\n');
        }
        out
    }
}

fn push_timeline_entry(out: &mut String, entry: &TimelineEntry) {
    match entry {
        TimelineEntry::SpanStart {
            id,
            parent,
            name,
            labels,
        } => {
            let _ = write!(
                out,
                "{{\"type\": \"span_start\", \"id\": {id}, \"parent\": "
            );
            match parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"name\": ");
            push_str_literal(out, name);
            out.push_str(", \"labels\": ");
            push_label_object(out, labels);
            out.push('}');
        }
        TimelineEntry::SpanEnd { id, attrs } => {
            let _ = write!(out, "{{\"type\": \"span_end\", \"id\": {id}, \"attrs\": {{");
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_str_literal(out, k);
                let _ = write!(out, ": {v}");
            }
            out.push_str("}}");
        }
        TimelineEntry::Event { span, name, fields } => {
            out.push_str("{\"type\": \"event\", \"span\": ");
            match span {
                Some(s) => {
                    let _ = write!(out, "{s}");
                }
                None => out.push_str("null"),
            }
            out.push_str(", \"name\": ");
            push_str_literal(out, name);
            out.push_str(", \"fields\": {");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_str_literal(out, k);
                out.push_str(": ");
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    FieldValue::F64(x) => push_f64(out, *x),
                    FieldValue::Str(s) => push_str_literal(out, s),
                    FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                }
            }
            out.push_str("}}");
        }
    }
}

fn push_prom_series(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) {
    out.push_str(name);
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=");
        push_str_literal(out, v);
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=");
        push_str_literal(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layouts, MetricsRegistry};

    fn sample() -> MetricsSnapshot {
        let m = MetricsRegistry::new();
        m.inc("wire_bytes_total", &[("kind", "full")], 8192);
        m.set_gauge("similarity", &[("vm", "1")], 0.75);
        m.observe("round_bytes", &[], layouts::BYTES, 8192);
        let s = m.span_start("migration", &[("vm", "1")]);
        m.event("probe", &[("hit", FieldValue::Bool(true))]);
        m.span_end(s, &[("bytes", 8192)]);
        m.snapshot()
    }

    #[test]
    fn canonical_json_is_stable() {
        let a = sample().to_canonical_json();
        let b = sample().to_canonical_json();
        assert_eq!(a, b);
        assert!(a.contains("\"wire_bytes_total\""));
        assert!(a.contains("\"value\": 0.75"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = MetricsRegistry::new().snapshot();
        let json = snap.to_canonical_json();
        assert!(json.contains("\"counters\": []"));
        assert!(json.contains("\"timeline\": []"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE wire_bytes_total counter"));
        assert!(text.contains("wire_bytes_total{kind=\"full\"} 8192"));
        assert!(text.contains("round_bytes_bucket{le=\"4096\"} 0"));
        assert!(text.contains("round_bytes_bucket{le=\"65536\"} 1"));
        assert!(text.contains("round_bytes_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("round_bytes_sum 8192"));
        assert!(text.contains("round_bytes_count 1"));
    }

    #[test]
    fn jsonl_one_line_per_entry() {
        let jsonl = sample().events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\": \"span_start\""));
        assert!(lines[1].contains("\"hit\": true"));
        assert!(lines[2].contains("\"bytes\": 8192"));
    }

    #[test]
    fn snapshot_counter_lookup() {
        let snap = sample();
        assert_eq!(snap.counter("wire_bytes_total", &[("kind", "full")]), 8192);
        assert_eq!(snap.counter("wire_bytes_total", &[("kind", "zero")]), 0);
        assert_eq!(snap.counter_total("wire_bytes_total"), 8192);
    }
}
