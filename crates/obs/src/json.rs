//! Minimal canonical JSON emission helpers.
//!
//! The golden-transcript suite asserts **byte-exact** snapshots, so the
//! serializer must be fully specified: 2-space indentation, `": "` after
//! keys, keys emitted in the order the caller supplies (callers iterate
//! `BTreeMap`s, so that order is itself deterministic), floats via
//! Rust's shortest round-trip `Display`.

use std::fmt::Write as _;

/// Appends `s` as a JSON string literal (quotes included).
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in canonical form (shortest round-trip).
///
/// Non-finite values cannot occur: gauges are set from simulator ratios
/// and finite durations; debug builds assert this at the recording site.
pub(crate) fn push_f64(out: &mut String, value: f64) {
    let _ = write!(out, "{value}");
}

/// Appends a `{"k": "v", ...}` object from already-sorted label pairs.
pub(crate) fn push_label_object(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_str_literal(out, k);
        out.push_str(": ");
        push_str_literal(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip() {
        let mut out = String::new();
        push_f64(&mut out, 0.1);
        push_f64(&mut out, 2.0);
        assert_eq!(out, "0.12");
    }

    #[test]
    fn label_objects_are_compact() {
        let mut out = String::new();
        push_label_object(
            &mut out,
            &[("a".into(), "1".into()), ("b".into(), "2".into())],
        );
        assert_eq!(out, r#"{"a": "1", "b": "2"}"#);
    }
}
