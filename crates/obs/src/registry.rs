//! The metrics registry: counters, gauges, histograms, spans, events.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::Mutex;

use crate::snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, TimelineEntry,
};

/// A fixed histogram bucket layout.
///
/// Layouts are compile-time constants (see [`crate::layouts`]) so every
/// series with the same unit agrees on boundaries — a precondition for
/// byte-stable golden snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketLayout {
    /// Unit tag recorded in snapshots (e.g. `"bytes"`).
    pub unit: &'static str,
    /// Inclusive upper bounds of the finite buckets, ascending. An
    /// implicit `+Inf` bucket catches the rest.
    pub bounds: &'static [u64],
}

/// Identifier of a span in the registry's timeline, assigned
/// sequentially from 1 on the single-threaded control path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A typed field value attached to a timeline event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, bytes, rounds).
    U64(u64),
    /// Finite float (ratios, simulated seconds).
    F64(f64),
    /// Free-form string (strategy names, outcomes).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// `(metric name, sorted label pairs)` — the series key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct SeriesKey {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    layout: BucketLayout,
    counts: Vec<u64>,
    sum: u64,
    total: u64,
}

impl Histogram {
    fn new(layout: BucketLayout) -> Self {
        Histogram {
            layout,
            counts: vec![0; layout.bounds.len() + 1],
            sum: 0,
            total: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let slot = self
            .layout
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.layout.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.total += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
    timeline: Vec<TimelineEntry>,
    /// Open-span stacks, one per driving thread. Span nesting is a
    /// property of a single control flow; concurrent sessions sharing
    /// one registry must not see each other's stacks (their counters
    /// commute, but their spans interleave).
    open_spans: HashMap<ThreadId, Vec<SpanId>>,
    next_span: u64,
}

impl Inner {
    fn stack(&mut self) -> &mut Vec<SpanId> {
        self.open_spans
            .entry(std::thread::current().id())
            .or_default()
    }
}

/// A deterministic metrics registry.
///
/// Cloning is cheap (an `Arc` bump); clones share state, so one
/// registry can be threaded through engine, session, checkpoint, net
/// and fault layers and snapshotted once at the end.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the counter `name{labels}`.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = SeriesKey::new(name, labels);
        *self.inner.lock().counters.entry(key).or_insert(0) += by;
    }

    /// Sets the gauge `name{labels}` to `value` (must be finite).
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        debug_assert!(value.is_finite(), "gauge {name} set to non-finite {value}");
        let key = SeriesKey::new(name, labels);
        self.inner.lock().gauges.insert(key, value);
    }

    /// Records `value` into the histogram `name{labels}` with the given
    /// fixed bucket `layout`. Every observation of a series must use
    /// the same layout.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], layout: BucketLayout, value: u64) {
        let key = SeriesKey::new(name, labels);
        let mut inner = self.inner.lock();
        let histogram = inner
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(layout));
        debug_assert_eq!(
            histogram.layout, layout,
            "histogram {name} observed with two different layouts"
        );
        histogram.observe(value);
    }

    /// Opens a span as a child of the innermost open span. Returns the
    /// id to pass to [`MetricsRegistry::span_end`].
    pub fn span_start(&self, name: &str, labels: &[(&str, &str)]) -> SpanId {
        let mut inner = self.inner.lock();
        inner.next_span += 1;
        let id = SpanId(inner.next_span);
        let parent = inner.stack().last().copied();
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        inner.timeline.push(TimelineEntry::SpanStart {
            id,
            parent,
            name: name.to_string(),
            labels,
        });
        inner.stack().push(id);
        id
    }

    /// Closes span `id`, attaching final attributes (simulated
    /// durations, byte counts — never wall-clock readings). Spans must
    /// close innermost-first on their own thread.
    pub fn span_end(&self, id: SpanId, attrs: &[(&str, u64)]) {
        let mut inner = self.inner.lock();
        let top = inner.stack().pop();
        debug_assert_eq!(top, Some(id), "span_end out of order");
        inner.timeline.push(TimelineEntry::SpanEnd {
            id,
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Records a point event inside the innermost open span of the
    /// calling thread.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        let mut inner = self.inner.lock();
        let span = inner.stack().last().copied();
        inner.timeline.push(TimelineEntry::Event {
            span,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Creates a thread-local counter accumulator for a parallel scan
    /// shard. Merge it back with [`MetricsRegistry::absorb`]; counter
    /// addition commutes, so the result is independent of merge order.
    pub fn shard(&self) -> CounterShard {
        CounterShard::default()
    }

    /// Merges a shard's counters into the registry.
    pub fn absorb(&self, shard: CounterShard) {
        let mut inner = self.inner.lock();
        for (key, value) in shard.counters {
            *inner.counters.entry(key).or_insert(0) += value;
        }
    }

    /// Reads one counter series (0 if never incremented).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = SeriesKey::new(name, labels);
        self.inner.lock().counters.get(&key).copied().unwrap_or(0)
    }

    /// Sums a counter across all label sets of `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Takes a deterministic point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| CounterSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, &v)| GaugeSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: v,
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| HistogramSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    unit: h.layout.unit.to_string(),
                    bounds: h.layout.bounds.to_vec(),
                    counts: h.counts.clone(),
                    sum: h.sum,
                    count: h.total,
                })
                .collect(),
            timeline: inner.timeline.clone(),
        }
    }
}

/// A lock-free per-shard counter accumulator for parallel phases.
///
/// Shards never touch spans or events (those stay on the control
/// path); they only accumulate counters, whose merge is commutative.
#[derive(Debug, Default)]
pub struct CounterShard {
    counters: BTreeMap<SeriesKey, u64>,
}

impl CounterShard {
    /// Adds `by` to the shard-local counter `name{labels}`.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = SeriesKey::new(name, labels);
        *self.counters.entry(key).or_insert(0) += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts;

    #[test]
    fn counters_accumulate_and_read_back() {
        let m = MetricsRegistry::new();
        m.inc("pages_total", &[("kind", "full")], 3);
        m.inc("pages_total", &[("kind", "full")], 2);
        m.inc("pages_total", &[("kind", "zero")], 1);
        assert_eq!(m.counter("pages_total", &[("kind", "full")]), 5);
        assert_eq!(m.counter_total("pages_total"), 6);
    }

    #[test]
    fn label_order_is_normalized() {
        let m = MetricsRegistry::new();
        m.inc("x", &[("b", "2"), ("a", "1")], 1);
        m.inc("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(m.counter("x", &[("b", "2"), ("a", "1")]), 2);
    }

    #[test]
    fn histogram_buckets_fill_per_slot() {
        let m = MetricsRegistry::new();
        for v in [1, 20, 5000, 2_000_000] {
            m.observe("h", &[], layouts::PAGES, v);
        }
        let snap = m.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 2_005_021);
        // buckets: ≤16, ≤256, ≤4096, ≤65536, ≤1048576, +Inf
        assert_eq!(h.counts, vec![1, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn shards_merge_commutatively() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let mut s1 = a.shard();
        let mut s2 = a.shard();
        s1.inc("n", &[], 3);
        s2.inc("n", &[], 4);
        let mut s3 = b.shard();
        let mut s4 = b.shard();
        s3.inc("n", &[], 4);
        s4.inc("n", &[], 3);
        a.absorb(s1);
        a.absorb(s2);
        b.absorb(s4);
        b.absorb(s3);
        assert_eq!(
            a.snapshot().to_canonical_json(),
            b.snapshot().to_canonical_json()
        );
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let m = MetricsRegistry::new();
        let mig = m.span_start("migration", &[("vm", "7")]);
        let round = m.span_start("round", &[("n", "1")]);
        m.event("page_class", &[("full", FieldValue::U64(10))]);
        m.span_end(round, &[("bytes", 4096)]);
        m.span_end(mig, &[]);
        let snap = m.snapshot();
        assert_eq!(snap.timeline.len(), 5);
        match &snap.timeline[1] {
            TimelineEntry::SpanStart { parent, .. } => assert_eq!(*parent, Some(mig)),
            other => panic!("unexpected entry {other:?}"),
        }
    }

    #[test]
    fn concurrent_drivers_keep_independent_span_stacks() {
        // Two threads sharing one registry interleave freely; each
        // thread's spans must still nest under its own parents, and
        // every span must close cleanly (the LIFO assertion is
        // per-thread).
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let m = m.clone();
                scope.spawn(move || {
                    for round in 0..8u64 {
                        let mig = m.span_start("migration", &[("vm", &t.to_string())]);
                        let r = m.span_start("round", &[("n", &round.to_string())]);
                        m.event("tick", &[("t", FieldValue::U64(t))]);
                        m.span_end(r, &[]);
                        m.span_end(mig, &[]);
                    }
                });
            }
        });
        let snap = m.snapshot();
        // 4 threads × 8 iterations × (2 starts + 1 event + 2 ends).
        assert_eq!(snap.timeline.len(), 4 * 8 * 5);
        // Every round span's parent is a migration span, never a span
        // from another thread's stack (migrations have no parent).
        let mut parents = std::collections::HashMap::new();
        for e in &snap.timeline {
            if let TimelineEntry::SpanStart {
                id, parent, name, ..
            } = e
            {
                parents.insert(*id, (*parent, name.clone()));
            }
        }
        for (parent, name) in parents.values() {
            match name.as_str() {
                "migration" => assert_eq!(*parent, None),
                "round" => {
                    let p = parent.expect("round must have a parent");
                    assert_eq!(parents[&p].1, "migration");
                }
                other => panic!("unexpected span {other}"),
            }
        }
    }
}
