//! Offline shim for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (which render to / rebuild from `serde::Value`). Supported
//! input shapes — the ones present in this workspace:
//!
//! - structs with named fields → `Value::Object` keyed by field name
//! - newtype structs → transparent (the inner value's representation)
//! - tuple structs with 2+ fields → `Value::Array`
//! - enums with only unit variants → `Value::Str(variant_name)`
//!
//! Generics and `#[serde(...)]` attributes are deliberately unsupported;
//! the macro panics with a clear message if it meets one, so a future
//! user extends the shim instead of silently getting wrong behavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct Name { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct Name(A, ...)` — the field count.
    Tuple(usize),
    /// `enum Name { A, B }` — unit variant names.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = match &input.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let name = &input.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(match self {{ {} }}.to_string())",
                arms.join(", "),
            )
        }
    };
    let name = &input.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl failed to parse")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match value.get(\"{f}\") {{\n\
                             Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
                             None => return Err(::serde::Error::custom(\n\
                                 \"missing field `{f}` in {name}\")),\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "if !matches!(value, ::serde::Value::Object(_)) {{\n\
                     return Err(::serde::Error::expected(\"object for {name}\", value));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(",\n"),
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => items,\n\
                     other => return Err(::serde::Error::expected(\n\
                         \"array of {n} elements for {name}\", other)),\n\
                 }};\n\
                 Ok({name}({}))",
                inits.join(", "),
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v})"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {},\n\
                         other => Err(::serde::Error::custom(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     other => Err(::serde::Error::expected(\"string for {name}\", other)),\n\
                 }}",
                arms.join(",\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl failed to parse")
}

fn parse(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and the visibility qualifier.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let shape = match (keyword.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(&name, g.stream()))
        }
        (kw, body) => panic!("serde_derive shim: unsupported item `{kw}` with body {body:?}"),
    };
    if let Shape::Tuple(0) = shape {
        panic!("serde_derive shim: unit struct `{name}` is not supported");
    }
    Input { name, shape }
}

/// Extracts field names from the body of a braced struct.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes (doc comments) and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected field name, got {other:?}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{field}`, got {other:?}"),
        }
        fields.push(field);
        // Consume the type: everything up to the next comma outside angle
        // brackets (groups are single trees, so only `<`/`>` need depth).
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut in_field = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => in_field = false,
            _ => {
                if !in_field {
                    fields += 1;
                    in_field = true;
                }
            }
        }
    }
    fields
}

/// Extracts variant names, rejecting variants that carry data.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            tokens.next();
        }
        let variant = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive shim: expected variant name, got {other:?}"),
            None => break,
        };
        match tokens.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "serde_derive shim: variant `{enum_name}::{variant}` carries data \
                 ({other:?}); only unit variants are supported"
            ),
        }
        variants.push(variant);
    }
    variants
}
