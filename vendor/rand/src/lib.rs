//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits with the
//! sampling methods this workspace uses: `gen::<f64>()`, `gen::<bool>()`,
//! `gen_range(a..b)` / `gen_range(a..=b)` over the integer types, and
//! `gen_bool(p)`. Distributions are uniform; exact bit-streams differ
//! from upstream rand, which is fine for this simulator — all consumers
//! seed explicitly and only rely on determinism, not on upstream's
//! stream values.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an RNG (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_sample_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Sample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_sample_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                 u64 => next_u64, usize => next_u64, i8 => next_u32,
                 i16 => next_u32, i32 => next_u32, i64 => next_u64,
                 isize => next_u64);

/// A range that can be sampled for a `T` (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(reject_sample(rng, span) as i64)
    }
}

/// Uniform draw in `[0, span)` by rejection, avoiding modulo bias.
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with SplitMix64 —
    /// same construction rand 0.8 documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Commonly-imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);

    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_fractions() {
        let mut rng = Step(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Step(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
