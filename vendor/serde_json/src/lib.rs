//! Offline shim for `serde_json`: JSON text ⇄ the serde shim's `Value`.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers parse preferentially as `u64`, then
//! `i64`, then `f64`; floats are emitted with Rust's shortest round-trip
//! `Display`, so `parse(emit(x))` reproduces `x` exactly for finite
//! values.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to JSON indented with two spaces.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing garbage, or a shape
/// mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos,
        )));
    }
    Ok(T::deserialize(&value)?)
}

fn emit(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {x}")));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => emit_string(s, out),
        Value::Array(items) => {
            emit_seq(
                items.iter(),
                items.len(),
                '[',
                ']',
                indent,
                depth,
                out,
                |item, out| emit(item, indent, depth + 1, out),
            )?;
        }
        Value::Object(fields) => {
            emit_seq(
                fields.iter(),
                fields.len(),
                '{',
                '}',
                indent,
                depth,
                out,
                |(key, val), out| {
                    emit_string(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    emit(val, indent, depth + 1, out)
                },
            )?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_seq<I: Iterator>(
    items: I,
    len: usize,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut each: impl FnMut(I::Item, &mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        each(item, out)?;
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
    Ok(())
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn fail(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {}", self.pos))
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.fail(&format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self
            .peek()
            .ok_or_else(|| self.fail("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a \uXXXX low surrogate.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.parse_hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.fail("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.fail("unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.fail("invalid codepoint"))?);
            }
            other => return Err(self.fail(&format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
        assert_eq!(from_str::<f64>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert!(from_str::<f64>("1e3").unwrap() == 1000.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\u{1}é😀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn vectors_and_options() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), v);
        assert_eq!(to_string(&None::<u64>).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![vec![1u64], vec![]];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  [\n    1\n  ],\n  []\n]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 troll").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str::<Vec<u64>>(&deep).is_err());
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
    }
}
