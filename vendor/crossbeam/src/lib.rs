//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::scope` / `crossbeam::thread::scope` with the
//! crossbeam 0.8 API shape (spawn closures receive the scope again, the
//! scope call returns a `thread::Result`), implemented on top of
//! `std::thread::scope`, which has been stable since Rust 1.63.

pub use thread::{scope, Scope, ScopedJoinHandle};

/// Scoped-thread module mirroring `crossbeam::thread`.
pub mod thread {
    /// Result type used by [`scope`]: `Err` carries a panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope in which borrowed-data threads can be spawned.
    ///
    /// A shim over [`std::thread::Scope`]; copies of it are handed to
    /// spawned closures, matching crossbeam's `|scope| ...` signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let nested = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&nested)),
            }
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all threads are joined before returning.
    ///
    /// Unlike crossbeam proper, a panicking child propagates the panic at
    /// scope exit (std semantics) rather than surfacing it in the `Err`
    /// arm — equivalent for callers that `.unwrap()`/`.expect()` the
    /// result, which is how this workspace uses it.
    ///
    /// # Errors
    ///
    /// The shim itself always returns `Ok`; the `Result` exists for
    /// crossbeam API compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
