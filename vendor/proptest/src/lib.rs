//! Offline shim for `proptest`.
//!
//! Keeps the API shape the workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`arbitrary::any`], [`collection::vec`], integer/float range
//! strategies, and the `prop_assert*` macros — backed by a small
//! deterministic RNG instead of the real crate's shrinking test runner.
//!
//! Differences from upstream, by design:
//!
//! - no shrinking: a failing case reports its case number and message;
//! - deterministic generation: inputs derive from the test's module path
//!   and name, so runs are reproducible without a persistence file.

/// The per-test configuration (`cases` only).
pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property assertion, carried out of the test body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// FNV-1a over a string — seeds each test's RNG from its name.
    pub fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The deterministic generation RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for one test case, keyed by test seed and case index.
        pub fn new(test_seed: u64, case: u64) -> Self {
            TestRng {
                state: test_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)` without modulo bias.
        ///
        /// # Panics
        ///
        /// Panics if `span` is zero.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty range");
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Re-export under the name upstream uses in `proptest_config`.
    pub use Config as ProptestConfig;
}

/// Value-generation strategies.
pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
    }

    /// Strategy for the full domain of a type (see [`crate::arbitrary`]).
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        pub(crate) marker: PhantomData<T>,
    }
}

/// `any::<T>()` — uniform over `T`'s whole domain.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            marker: PhantomData,
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive length band for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a vector strategy from an element strategy and a size band.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob import used by every property test.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection::vec as prop_vec;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal, failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format_args!($($fmt)*),
            l,
            r,
        );
    }};
}

/// Asserts two expressions differ, failing the case otherwise.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::fnv(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(seed, u64::from(case));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}:\n{e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 1u8..=3, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_band(v in prop_vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_map(pair in (0u64..4, any::<bool>()), s in (0u64..9).prop_map(|n| n * 2)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(s % 2, 0);
            prop_assert_ne!(s, 19);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..100, 1..10);
        let a = strat.generate(&mut TestRng::new(7, 3));
        let b = strat.generate(&mut TestRng::new(7, 3));
        assert_eq!(a, b);
    }
}
