//! Offline shim for `serde`.
//!
//! Instead of the real crate's visitor-based architecture, this shim uses
//! a self-describing [`Value`] tree as the interchange model:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds
//! the type from one. The companion `serde_json` shim converts between
//! `Value` and JSON text. The derive macros (re-exported from the
//! `serde_derive` shim) generate impls of these traits for plain structs
//! and unit-variant enums — exactly the shapes this workspace uses.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the shim's serialization model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`], `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Convenience constructor for "expected X, found Y" mismatches.
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be rendered into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a self-describing value.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type.
    ///
    /// # Errors
    ///
    /// Returns an error when `value`'s shape does not match the type.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t),
                    )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }

        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} overflows i64")))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t),
                    )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = match value {
            Value::Array(items) => items,
            other => return Err(Error::expected("array", other)),
        };
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len(),
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length changed during deserialization"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&17u64.serialize()).unwrap(), 17);
        assert_eq!(i32::deserialize(&(-5i32).serialize()).unwrap(), -5);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::deserialize(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn float_accepts_integer_value() {
        assert_eq!(f64::deserialize(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(f64::deserialize(&Value::I64(-3)).unwrap(), -3.0);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u64>.serialize(), Value::Null);
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize(&Value::U64(2)).unwrap(), Some(2));
    }

    #[test]
    fn arrays_check_length() {
        let v = [1u64, 2, 3].serialize();
        assert_eq!(<[u64; 3]>::deserialize(&v).unwrap(), [1, 2, 3]);
        assert!(<[u64; 4]>::deserialize(&v).is_err());
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
    }
}
