//! Offline shim for `criterion`.
//!
//! Mirrors the criterion 0.5 API shapes this workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros) over a plain
//! `std::time::Instant` harness: each benchmark is warmed up, run for a
//! fixed wall-clock budget, and reported as median ns/iteration plus
//! derived throughput. No statistics machinery, no HTML reports — just
//! comparable numbers on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// How throughput is derived from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter suffix.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time single calls until we know
        // roughly how expensive one iteration is.
        let calibration = Instant::now();
        let mut one = Duration::ZERO;
        let mut calls = 0u32;
        while calls < 3 || (one.is_zero() && calibration.elapsed() < Duration::from_millis(50)) {
            let t = Instant::now();
            std::hint::black_box(f());
            one = t.elapsed();
            calls += 1;
        }
        // Aim each sample at ~20 ms, capped to keep huge benches fast.
        let per_sample = (Duration::from_millis(20).as_nanos() / one.as_nanos().max(1)) as u64;
        let iters = per_sample.clamp(1, 1_000_000);
        let samples = if one > Duration::from_millis(200) {
            3
        } else {
            7
        };
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = times[times.len() / 2];
    }
}

/// One named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the throughput used to annotate subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes warm-up itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies criterion's standard CLI arguments.
    ///
    /// The shim accepts and ignores them (cargo passes `--bench`).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, f);
        self
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.ns_per_iter;
    let time = format_time(ns);
    match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let rate = bytes as f64 / (ns * 1e-9);
            println!(
                "{label:<50} time: {time:>12}   thrpt: {:>12}/s",
                format_bytes(rate),
            );
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<50} time: {time:>12}   thrpt: {rate:>12.0} elem/s");
        }
        _ => println!("{label:<50} time: {time:>12}"),
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_bytes(rate: f64) -> String {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const KIB: f64 = 1024.0;
    if rate >= GIB {
        format!("{:.2} GiB", rate / GIB)
    } else if rate >= MIB {
        format!("{:.2} MiB", rate / MIB)
    } else if rate >= KIB {
        format!("{:.2} KiB", rate / KIB)
    } else {
        format!("{rate:.0} B")
    }
}

/// Declares a benchmark group function, as in criterion proper.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Bytes(4096));
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0u64..64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("bare", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_measures() {
        benches();
    }

    #[test]
    fn formatting_is_sensible() {
        assert_eq!(format_time(12.34), "12.3 ns");
        assert_eq!(format_time(12_340.0), "12.34 µs");
        assert!(format_bytes(3.0 * 1024.0 * 1024.0).contains("MiB"));
    }
}
