//! Offline shim for `rand_chacha`: a genuine ChaCha8 keystream RNG.
//!
//! The block function is the real ChaCha quarter-round construction with
//! 8 rounds; only the word-serialization order of the keystream may
//! differ from upstream `rand_chacha`. Consumers in this workspace seed
//! explicitly and rely on determinism and statistical quality, both of
//! which hold.

use rand::{RngCore, SeedableRng};

/// A ChaCha RNG with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key + counter state words 4..16 of the ChaCha matrix.
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unserved word in `buf`; 16 means "refill".
    cursor: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        // ChaCha8: 8 rounds = 4 double rounds.
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.buf[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
