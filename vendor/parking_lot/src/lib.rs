//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free guard
//! API (`lock()`/`read()`/`write()` return guards directly). Poisoning
//! is translated into a panic propagation, which matches parking_lot's
//! observable behaviour for the call sites in this workspace.

pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

mod mutex {
    /// A mutual-exclusion lock with parking_lot's non-poisoning API.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            match self.inner.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, blocking until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Mutable access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }
}

mod rwlock {
    /// A reader-writer lock with parking_lot's non-poisoning API.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    /// Guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
    /// Guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        /// Creates a new reader-writer lock.
        pub fn new(value: T) -> Self {
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            match self.inner.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read lock.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Acquires an exclusive write lock.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }

        /// Mutable access without locking.
        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
