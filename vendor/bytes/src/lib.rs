//! Offline shim for the `bytes` crate.
//!
//! Implements the cursor-style [`Buf`] / [`BufMut`] traits for `&[u8]`
//! and `Vec<u8>` with the same big-endian semantics and panic behaviour
//! (reading past the end panics) as the real crate — the only surface
//! this workspace uses.

/// An owned byte buffer, as returned by [`Buf::copy_to_bytes`].
///
/// A thin wrapper over `Vec<u8>` (the real crate's refcounted view
/// machinery is unnecessary for this workspace's use).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// The number of bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer, advancing it.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Copies the next `len` bytes into an owned [`Bytes`], advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes { inner: out }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "cannot advance {cnt} bytes past the end of a {}-byte buffer",
            self.len()
        );
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32();
    }
}
